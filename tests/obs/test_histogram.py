"""LatencyHistogram edge cases: overflow buckets, mismatched merges,
percentile monotonicity, and exact total_s accounting."""

from __future__ import annotations

import random

import pytest

from repro.obs import LatencyHistogram

_TOP_EDGE = LatencyHistogram._BOUNDS[-1]


class TestOverflowBucket:
    def test_samples_beyond_top_edge_land_in_overflow(self):
        hist = LatencyHistogram()
        hist.record(_TOP_EDGE * 10)
        assert hist._counts[-1] == 1
        assert sum(hist._counts[:-1]) == 0

    def test_overflow_percentiles_clamp_to_observed_max(self):
        """The overflow bucket has no upper edge; percentiles falling into
        it must report the observed maximum, not infinity or an edge."""
        hist = LatencyHistogram()
        big = _TOP_EDGE * 3
        for _ in range(100):
            hist.record(big)
        snap = hist.snapshot()
        assert snap["p50_ms"] == pytest.approx(big * 1e3)
        assert snap["p99_ms"] == pytest.approx(big * 1e3)
        assert snap["max_ms"] == pytest.approx(big * 1e3)

    def test_mixed_overflow_keeps_low_percentiles_in_buckets(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1e-3)
        hist.record(_TOP_EDGE * 5)                    # one straggler
        snap = hist.snapshot()
        assert snap["p50_ms"] < 2.0                   # still bucket-bound
        assert snap["max_ms"] == pytest.approx(_TOP_EDGE * 5 * 1e3)
        # p99 over 100 samples targets rank 99 -> still the 1ms mass.
        assert snap["p99_ms"] < 2.0


class TestMergeSnapshots:
    def test_merge_sums_exact_total_s(self):
        """Satellite fix: merged total_s must be the exact sum, not a
        reconstruction from the rounded mean_ms."""
        parts = []
        expect = 0.0
        for seed in range(3):
            hist = LatencyHistogram()
            rng = random.Random(seed)
            for _ in range(1000):
                value = rng.random() * 1e-3 + 1e-7
                hist.record(value)
                expect += value
            parts.append(hist.snapshot())
        merged = LatencyHistogram.merge_snapshots(parts)
        assert merged["total_s"] == pytest.approx(expect, rel=1e-12)
        assert merged["count"] == 3000

    def test_merge_falls_back_to_mean_for_legacy_snapshots(self):
        hist = LatencyHistogram()
        hist.record(0.002)
        hist.record(0.004)
        legacy = hist.snapshot()
        del legacy["total_s"]                   # pre-PR-7 snapshot shape
        merged = LatencyHistogram.merge_snapshots([legacy])
        assert merged["total_s"] == pytest.approx(0.006, rel=1e-6)

    def test_merge_short_bucket_list(self):
        """A snapshot with fewer buckets (older layout) merges positionally
        instead of raising."""
        hist = LatencyHistogram()
        hist.record(1e-4)
        short = hist.snapshot()
        short["buckets"] = short["buckets"][:10]
        merged = LatencyHistogram.merge_snapshots([short, short])
        assert merged["count"] == 2
        assert sum(merged["buckets"]) == 2

    def test_merge_long_bucket_list_drops_extras(self):
        hist = LatencyHistogram()
        hist.record(1e-4)
        long = hist.snapshot()
        long["buckets"] = long["buckets"] + [7, 7, 7]
        merged = LatencyHistogram.merge_snapshots([long])
        assert len(merged["buckets"]) == len(hist._counts)
        assert merged["count"] == 1

    def test_merge_empty_and_none_docs(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        merged = LatencyHistogram.merge_snapshots(
            [None, {}, hist.snapshot()])
        assert merged["count"] == 1


class TestPercentileMonotonicity:
    @pytest.mark.parametrize("seed", range(5))
    def test_p50_le_p95_le_p99_le_max(self, seed):
        hist = LatencyHistogram()
        rng = random.Random(seed)
        for _ in range(2000):
            # Heavy-tailed mix: bucketed mass, sub-range, and overflow.
            draw = rng.random()
            if draw < 0.8:
                hist.record(rng.random() * 0.05)
            elif draw < 0.95:
                hist.record(rng.random() * 2.0)
            else:
                hist.record(_TOP_EDGE * (1 + rng.random()))
        snap = hist.snapshot()
        assert snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"] \
            <= snap["max_ms"]
        assert 0.0 < snap["mean_ms"] <= snap["max_ms"]

    def test_percentiles_conservative_within_one_bucket(self):
        hist = LatencyHistogram()
        for _ in range(1000):
            hist.record(1e-3)
        # The estimate is the holding bucket's upper edge: never below
        # the true value, at most one bucket ratio above it.
        assert 1.0 <= hist.percentile(50) * 1e3 <= 1.25

    def test_empty_histogram_reports_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms"] == snap["p99_ms"] == snap["max_ms"] == 0.0
        assert snap["total_s"] == 0.0
