"""Tracer/Span: id propagation, ring bounds, NDJSON sink, thread scope."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (SpanContext, Tracer, current_engine_contexts,
                       engine_trace_scope)


@pytest.fixture
def tracer():
    return Tracer(ring_size=64)


class TestSpans:
    def test_parent_child_share_trace_id(self, tracer):
        parent = tracer.span("http.predict")
        child = tracer.span("queue.wait", parent=parent.context)
        child.end()
        parent.end()
        spans = tracer.find_trace(parent.trace_id)
        assert {s["name"] for s in spans} == {"http.predict", "queue.wait"}
        by_name = {s["name"]: s for s in spans}
        assert by_name["queue.wait"]["parent_id"] == parent.span_id
        assert by_name["http.predict"]["parent_id"] is None

    def test_span_ids_unique(self, tracer):
        ids = {tracer.span("s").span_id for _ in range(100)}
        assert len(ids) == 100

    def test_explicit_trace_id_joins(self, tracer):
        span = tracer.span("joined", trace_id="feedface01")
        span.end()
        assert tracer.find_trace("feedface01")

    def test_context_manager_records_error_status(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("engine exploded")
        doc = tracer.export()[-1]
        assert doc["status"] == "error"
        assert "RuntimeError" in doc["attributes"]["error"]

    def test_backdated_span_duration(self, tracer):
        span = tracer.span("queue.wait")
        span.start_time -= 1.5
        span.end(duration_s=1.5)
        doc = tracer.export()[-1]
        assert doc["duration_ms"] == pytest.approx(1500.0)

    def test_end_is_idempotent(self, tracer):
        span = tracer.span("once")
        span.end()
        span.end()
        assert len(tracer.export()) == 1

    def test_attributes_exported(self, tracer):
        tracer.span("s", attributes={"rows": 4}) \
            .set_attribute("batch_size", 8).end()
        doc = tracer.export()[-1]
        assert doc["attributes"] == {"rows": 4, "batch_size": 8}


class TestRing:
    def test_ring_bounds_and_drop_accounting(self):
        tracer = Tracer(ring_size=4)
        for i in range(10):
            tracer.span(f"s{i}").end()
        spans = tracer.export()
        assert len(spans) == 4
        assert [s["name"] for s in spans] == ["s6", "s7", "s8", "s9"]
        snap = tracer.snapshot()
        assert snap["spans_total"] == 10
        assert snap["spans_dropped"] == 6
        assert snap["ring_used"] == 4

    def test_export_limit_returns_most_recent(self, tracer):
        for i in range(5):
            tracer.span(f"s{i}").end()
        assert [s["name"] for s in tracer.export(limit=2)] == ["s3", "s4"]


class TestSink:
    def test_ndjson_sink_one_line_per_span(self, tmp_path):
        path = tmp_path / "traces.ndjson"
        tracer = Tracer(sink=str(path))
        tracer.span("a").end()
        tracer.span("b").end()
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == {"a", "b"}

    def test_sink_opened_lazily(self, tmp_path):
        path = tmp_path / "never.ndjson"
        tracer = Tracer(sink=str(path))
        tracer.close()
        assert not path.exists()


class TestEngineScope:
    def test_scope_sets_and_restores(self, tracer):
        ctx = tracer.span("outer").context
        assert current_engine_contexts() == ()
        with engine_trace_scope((ctx,)):
            assert current_engine_contexts() == (ctx,)
            with engine_trace_scope(()):
                assert current_engine_contexts() == ()
            assert current_engine_contexts() == (ctx,)
        assert current_engine_contexts() == ()

    def test_scope_filters_none(self, tracer):
        ctx = tracer.span("s").context
        with engine_trace_scope((None, ctx, None)):
            assert current_engine_contexts() == (ctx,)

    def test_scope_is_thread_local(self, tracer):
        ctx = tracer.span("s").context
        seen = {}

        def worker():
            seen["other"] = current_engine_contexts()

        with engine_trace_scope((ctx,)):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] == ()

    def test_span_context_equality_ignores_tracer(self, tracer):
        ctx = tracer.span("s").context
        clone = SpanContext(ctx.trace_id, ctx.span_id, tracer=None)
        assert ctx == clone
        assert len({ctx, clone}) == 1
