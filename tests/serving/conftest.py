"""Serving-suite fixtures: one small untrained model shared per session.

Serving is prediction-agnostic — every layer's contract is parity with
the per-sample :class:`~repro.core.DSEPredictor` — so an untrained model
exercises the stack exactly as a trained one would, in milliseconds.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.core import AirchitectV2, ModelConfig

SERVE_MODEL_CONFIG = ModelConfig(d_model=16, n_layers=1, n_heads=2,
                                 embed_dim=8)

_TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def _serving_test_timeout(request):
    """Hard per-test timeout for the serving suite.

    The suite is all threads, queues and sockets — a deadlock would
    otherwise hang CI until the job-level timeout.  SIGALRM interrupts
    the stuck test with a plain failure instead (main thread + POSIX
    only; elsewhere the fixture is a no-op and the CI job timeout is
    the backstop).
    """
    if not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def on_alarm(signum, frame):
        pytest.fail(f"serving test exceeded the {_TEST_TIMEOUT_S}s "
                    f"per-test timeout (likely deadlock)", pytrace=True)

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def serve_model(problem) -> AirchitectV2:
    return AirchitectV2(SERVE_MODEL_CONFIG, problem,
                        np.random.default_rng(2024))
