"""Serving-suite fixtures: one small untrained model shared per session.

Serving is prediction-agnostic — every layer's contract is parity with
the per-sample :class:`~repro.core.DSEPredictor` — so an untrained model
exercises the stack exactly as a trained one would, in milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AirchitectV2, ModelConfig

SERVE_MODEL_CONFIG = ModelConfig(d_model=16, n_layers=1, n_heads=2,
                                 embed_dim=8)


@pytest.fixture(scope="session")
def serve_model(problem) -> AirchitectV2:
    return AirchitectV2(SERVE_MODEL_CONFIG, problem,
                        np.random.default_rng(2024))
