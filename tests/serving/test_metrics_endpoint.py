"""/metrics exposition, /stats compatibility, and end-to-end tracing
on both HTTP front-ends."""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.serving import AsyncDSEServer, DSEServer
from repro.serving.stats import ServingStats

_SERIES_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ")

# The exact top-level /stats key order PR 6 shipped; clients key on it.
_STATS_KEYS = (
    "uptime_s", "requests_total", "batches_total", "samples_total",
    "queued_samples", "forward_passes", "forward_rows", "forward_time_s",
    "queue_wait_total_s", "sweeps_total", "sweep_rows_total",
    "sweep_chunks_total", "errors_total", "mean_batch_size",
    "mean_queue_wait_ms", "max_queue_wait_ms", "latency", "models",
    "default_model",
)


@pytest.fixture
def server(serve_model):
    srv = DSEServer(serve_model, port=0, max_batch_size=16, max_wait_ms=2)
    with srv:
        yield srv


@pytest.fixture
def async_server(serve_model):
    srv = AsyncDSEServer(serve_model, port=0, max_batch_size=16,
                         max_wait_ms=2)
    with srv:
        yield srv


def _get_raw(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return resp.status, dict(resp.headers), resp.read()


def _post(server, path, doc):
    req = urllib.request.Request(server.url + path,
                                 data=json.dumps(doc).encode())
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def _series_names(text: str) -> set[str]:
    """Every ``name{labels}`` series identifier in an exposition body."""
    names = set()
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        match = _SERIES_RE.match(line)
        assert match, f"unparseable series line: {line!r}"
        names.add(match.group(1) + (match.group(2) or ""))
    return names


def _wait_for_spans(tracer, trace_id, names, timeout=5.0):
    """Span emission is off the response critical path; poll briefly."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        spans = tracer.find_trace(trace_id)
        if names <= {s["name"] for s in spans}:
            return spans
        time.sleep(0.01)
    return tracer.find_trace(trace_id)


class TestMetricsEndpoint:
    def test_exposition_content_type_and_shape(self, server):
        status, headers, body = _get_raw(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        text = body.decode()
        assert text.endswith("\n")
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text

    def test_requests_counted_per_model(self, server):
        _post(server, "/predict", {"m": 8, "n": 8, "k": 8})
        _, _, body = _get_raw(server, "/metrics")
        pattern = re.compile(
            r'repro_requests_total\{[^}]*model="default"[^}]*\} (\d+)')
        match = pattern.search(body.decode())
        assert match and int(match.group(1)) >= 1

    def test_no_duplicate_series(self, server):
        _post(server, "/predict", {"m": 8, "n": 8, "k": 8})
        _, _, body = _get_raw(server, "/metrics")
        lines = [_SERIES_RE.match(line).group(0)
                 for line in body.decode().splitlines()
                 if line and not line.startswith("#")]
        assert len(lines) == len(set(lines))

    def test_transport_parity_identical_series(self, server, async_server):
        """Both transports render the same registry surface: the series
        identifiers (names + labels) must match exactly."""
        _post(server, "/predict", {"m": 8, "n": 8, "k": 8})
        _post(async_server, "/predict", {"m": 8, "n": 8, "k": 8})
        _, _, threaded = _get_raw(server, "/metrics")
        _, _, asynced = _get_raw(async_server, "/metrics")
        assert _series_names(threaded.decode()) \
            == _series_names(asynced.decode())


class TestStatsCompatibility:
    def test_stats_key_order_unchanged(self, server):
        _post(server, "/predict", {"m": 8, "n": 8, "k": 8})
        _, _, body = _get_raw(server, "/stats")
        doc = json.loads(body)
        keys = tuple(doc)
        # oracle_cache only appears once an oracle request warmed it.
        assert keys == _STATS_KEYS or keys == _STATS_KEYS + ("oracle_cache",)
        assert doc["requests_total"] >= 1
        assert set(doc["latency"]) >= {"count", "p50_ms", "p95_ms",
                                       "p99_ms", "total_s"}

    def test_stats_registry_and_metrics_agree(self, server):
        for _ in range(3):
            _post(server, "/predict", {"m": 8, "n": 8, "k": 8})
        _, _, stats_body = _get_raw(server, "/stats")
        _, _, metrics_body = _get_raw(server, "/metrics")
        doc = json.loads(stats_body)
        match = re.search(
            r'repro_requests_total\{[^}]*model="default"[^}]*\} (\d+)',
            metrics_body.decode())
        assert int(match.group(1)) == doc["requests_total"]

    def test_merge_snapshots_tolerates_missing_keys(self):
        """Satellite fix: a snapshot predating a newly-added counter must
        contribute zero, not raise KeyError out of /stats."""
        full = ServingStats().snapshot()
        legacy = dict(full)
        del legacy["sweeps_total"]
        del legacy["queue_wait_total_s"]
        merged = ServingStats.merge_snapshots([full, legacy], uptime_s=1.0)
        assert merged["sweeps_total"] == full["sweeps_total"]
        assert merged["errors_total"] == 0


class TestTracing:
    @pytest.mark.parametrize("fixture_name", ["server", "async_server"])
    def test_batcher_request_produces_one_linked_trace(self, request,
                                                       fixture_name):
        """Acceptance criterion: one batcher-served request yields one
        trace whose front-end, queue-wait, and engine-forward spans all
        share the trace id echoed in ``X-Trace-Id``."""
        srv = request.getfixturevalue(fixture_name)
        _, headers, _ = _post(srv, "/predict", {"m": 8, "n": 8, "k": 8})
        trace_id = headers["X-Trace-Id"]
        spans = _wait_for_spans(srv.tracer, trace_id,
                                {"http.predict", "queue.wait",
                                 "engine.forward"})
        names = [s["name"] for s in spans]
        assert {"http.predict", "queue.wait", "engine.forward"} <= set(names)
        assert names.count("engine.forward") == 1
        assert all(s["trace_id"] == trace_id for s in spans)
        by_name = {s["name"]: s for s in spans}
        assert by_name["queue.wait"]["parent_id"] \
            == by_name["http.predict"]["span_id"]

    def test_incoming_trace_id_header_joins(self, server):
        req = urllib.request.Request(
            server.url + "/predict",
            data=json.dumps({"m": 8, "n": 8, "k": 8}).encode(),
            headers={"X-Trace-Id": "feedfacecafe0123"})
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers["X-Trace-Id"] == "feedfacecafe0123"
        spans = _wait_for_spans(server.tracer, "feedfacecafe0123",
                                {"http.predict"})
        assert spans

    def test_malformed_trace_id_gets_fresh_id(self, server):
        req = urllib.request.Request(
            server.url + "/predict",
            data=json.dumps({"m": 8, "n": 8, "k": 8}).encode(),
            headers={"X-Trace-Id": "not hex!"})
        with urllib.request.urlopen(req, timeout=30) as resp:
            echoed = resp.headers["X-Trace-Id"]
        assert echoed and echoed != "not hex!"

    def test_tracing_disabled_omits_header(self, serve_model):
        srv = DSEServer(serve_model, port=0, max_batch_size=16,
                        max_wait_ms=2, enable_tracing=False)
        with srv:
            _, headers, _ = _post(srv, "/predict", {"m": 8, "n": 8, "k": 8})
        assert "X-Trace-Id" not in headers
        assert srv.tracer is None

    def test_trace_file_sink_receives_spans(self, serve_model, tmp_path):
        path = tmp_path / "spans.ndjson"
        srv = DSEServer(serve_model, port=0, max_batch_size=16,
                        max_wait_ms=2, trace_file=str(path))
        with srv:
            _, headers, _ = _post(srv, "/predict", {"m": 8, "n": 8, "k": 8})
            trace_id = headers["X-Trace-Id"]
            _wait_for_spans(srv.tracer, trace_id, {"engine.forward"})
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert any(doc["trace_id"] == trace_id for doc in lines)
