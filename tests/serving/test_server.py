"""End-to-end HTTP smoke tests against an ephemeral-port DSEServer."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import AirchitectV2, DSEPredictor
from repro.registry import ModelRegistry
from repro.serving import DSEServer

from .conftest import SERVE_MODEL_CONFIG


@pytest.fixture
def server(serve_model):
    srv = DSEServer(serve_model, port=0, max_batch_size=16, max_wait_ms=2)
    with srv:
        yield srv


@pytest.fixture
def second_model(problem) -> AirchitectV2:
    """A differently-initialised model whose predictions differ."""
    return AirchitectV2(SERVE_MODEL_CONFIG, problem,
                        np.random.default_rng(777))


def _get(server: DSEServer, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server: DSEServer, path: str, doc) -> tuple[int, dict]:
    body = json.dumps(doc).encode()
    req = urllib.request.Request(server.url + path, data=body,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, doc = _get(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["uptime_s"] >= 0

    def test_predict_single_workload_matches_predictor(self, server,
                                                       serve_model):
        status, doc = _post(server, "/predict",
                            {"m": 64, "n": 512, "k": 256, "dataflow": 1})
        assert status == 200
        pred = doc["predictions"][0]
        pe, l2 = DSEPredictor(serve_model).predict(64, 512, 256, 1)
        assert pred["num_pes"] == int(pe[0])
        assert pred["l2_kb"] == int(l2[0])

    def test_predict_workload_list_with_cost(self, server, problem):
        workloads = [{"m": 8, "n": 8, "k": 8},
                     {"m": 128, "n": 1024, "k": 512, "dataflow": 2}]
        status, doc = _post(server, "/predict",
                            {"workloads": workloads, "with_cost": True})
        assert status == 200
        assert doc["count"] == 2
        for pred in doc["predictions"]:
            assert pred["num_pes"] in problem.space.pe_choices
            assert pred["predicted_cost"] > 0

    def test_with_oracle_reports_optimum_and_warms_label_cache(self, server,
                                                               problem):
        body = {"workloads": [{"m": 48, "n": 300, "k": 96, "dataflow": 1}],
                "with_oracle": True}
        status, doc = _post(server, "/predict", body)
        assert status == 200
        pred = doc["predictions"][0]
        assert pred["oracle_num_pes"] in problem.space.pe_choices
        assert pred["oracle_cost"] > 0
        # The label is the cheapest config within the oracle's 2%
        # tolerance band, so regret can be marginally negative.
        assert pred["regret"] >= -0.021
        # The repeat request is served from the oracle's label cache —
        # the in-process face of the persistent-cache contract.
        _post(server, "/predict", body)
        _, stats = _get(server, "/stats")
        assert stats["oracle_cache"]["hits"] >= 1

    def test_stats_reflect_traffic(self, server):
        _post(server, "/predict", {"workloads": [
            {"m": 16, "n": 16, "k": 16}, {"m": 32, "n": 32, "k": 32}],
            "with_cost": True})
        status, doc = _get(server, "/stats")
        assert status == 200
        assert doc["requests_total"] >= 2
        assert doc["samples_total"] >= 2
        assert doc["batches_total"] >= 1
        assert doc["forward_passes"] >= 1
        assert doc["mean_batch_size"] > 0
        # with_cost created the lazy oracle, so /stats now reports its
        # label-cache accounting.
        assert "oracle_cache" in doc


class TestConcurrentClients:
    def test_parallel_posts_all_answered_and_batched(self, server,
                                                     serve_model, problem):
        inputs = problem.sample_inputs(12, np.random.default_rng(5))
        answers: dict[int, dict] = {}
        barrier = threading.Barrier(len(inputs))

        def client(i: int) -> None:
            row = inputs[i]
            barrier.wait()
            _, doc = _post(server, "/predict",
                           {"m": int(row[0]), "n": int(row[1]),
                            "k": int(row[2]), "dataflow": int(row[3])})
            answers[i] = doc["predictions"][0]

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(inputs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        pe_ref, _ = DSEPredictor(serve_model).predict_indices(inputs)
        for i in range(len(inputs)):
            assert answers[i]["pe_idx"] == pe_ref[i]
        _, stats = _get(server, "/stats")
        assert stats["forward_passes"] <= len(inputs)


class TestBulkBodies:
    def test_large_body_served_in_one_engine_batch(self, server, serve_model,
                                                   problem):
        """Bodies above max_batch_size bypass the queue: one vectorised
        engine call, not ceil(N/max_batch) coalesced batches."""
        inputs = problem.sample_inputs(200, np.random.default_rng(11))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        status, doc = _post(server, "/predict", {"workloads": workloads})
        assert status == 200
        assert doc["count"] == 200
        pe_ref, _ = DSEPredictor(serve_model).predict_indices(inputs)
        assert [p["pe_idx"] for p in doc["predictions"]] == pe_ref.tolist()
        _, stats = _get(server, "/stats")
        assert stats["requests_total"] == 200
        assert stats["batches_total"] == 1
        assert stats["forward_passes"] == 1     # engine micro-batch >= 200
        # Bulk rows never queued, so they must not dilute the wait mean.
        assert stats["queued_samples"] == 0
        assert stats["mean_queue_wait_ms"] == 0.0


class TestErrorHandling:
    def test_unknown_path_404(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", {})[0] == 404

    def test_bad_content_length_400(self, server):
        import http.client
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/predict")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert "Content-Length" in json.loads(resp.read())["error"]
        finally:
            conn.close()

    def test_error_responses_close_keepalive_connections(self, server):
        """A 400 sent before the body was drained must not leave unread
        bytes to desync the next request on a persistent connection."""
        import http.client
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = b"x" * 128              # never read by the server
            conn.putrequest("POST", "/predict")
            conn.putheader("Content-Length", str(9 << 20))  # over the cap
            conn.endheaders()
            conn.send(body)
            resp = conn.getresponse()
            assert resp.status == 400
            assert resp.getheader("Connection") == "close"
            resp.read()
        finally:
            conn.close()
        # And the server keeps answering fresh connections.
        assert _get(server, "/healthz")[0] == 200

    def test_invalid_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    @pytest.mark.parametrize("body", [
        {}, {"workloads": []}, {"workloads": [{"m": 1}]},
        {"workloads": [{"m": 8, "n": 8, "k": 8, "dataflow": 9}]},
        {"workloads": ["not-an-object"]},
    ], ids=["empty", "no-workloads", "missing-keys", "bad-dataflow",
            "non-object"])
    def test_malformed_bodies_400_with_detail(self, server, body):
        status, doc = _post(server, "/predict", body)
        assert status == 400
        assert "error" in doc

    @pytest.mark.parametrize("body", ["just a string", 42, [1, 2, 3], None],
                             ids=["string", "number", "int-list", "null"])
    def test_non_dict_bodies_400_not_500(self, server, body):
        """Scalar / non-object JSON bodies are client errors, never
        tracebacks."""
        status, doc = _post(server, "/predict", body)
        assert status == 400
        assert "error" in doc
        status, doc = _post(server, "/sweep", body)
        assert status == 400
        assert "error" in doc

    def test_unknown_methods_get_json_404(self, server):
        for method in ("PUT", "DELETE"):
            req = urllib.request.Request(server.url + "/predict",
                                         data=b"{}", method=method)
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 404
            assert "unknown route" in json.loads(err.value.read())["error"]
        assert _get(server, "/healthz")[0] == 200

    def test_bad_model_type_400(self, server):
        status, doc = _post(server, "/predict",
                            {"m": 8, "n": 8, "k": 8, "model": 7})
        assert status == 400
        assert "'model'" in doc["error"]

    def test_empty_workloads_is_a_clean_json_400(self, server):
        """Regression: an empty 'workloads' list used to reach
        np.stack([]) in the engine and escape as a 500 with a numpy
        traceback in the body."""
        status, doc = _post(server, "/predict", {"workloads": []})
        assert status == 400
        assert set(doc) == {"error"}            # JSON error shape, no extras
        assert "non-empty" in doc["error"]
        assert "Traceback" not in doc["error"]
        assert "np.stack" not in doc["error"]
        # The server stays healthy and the error never pollutes stats'
        # request counters (it was rejected before admission).
        assert _get(server, "/healthz")[0] == 200


class TestMultiModelRouting:
    @pytest.fixture
    def multi_server(self, serve_model, second_model):
        srv = DSEServer(serve_model, port=0, max_batch_size=16, max_wait_ms=2,
                        default_model="alpha")
        srv.add_model("beta", second_model)
        with srv:
            yield srv

    def test_routes_are_parity_tested_against_dedicated_servers(
            self, multi_server, serve_model, second_model, problem):
        """Per-model predictions through the routed server are bit-identical
        to a dedicated single-model DSEServer for that model."""
        inputs = problem.sample_inputs(40, np.random.default_rng(21))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        for name, model in (("alpha", serve_model), ("beta", second_model)):
            _, routed = _post(multi_server, "/predict",
                              {"workloads": workloads, "model": name})
            with DSEServer(model, port=0, max_batch_size=16,
                           max_wait_ms=2) as dedicated:
                _, single = _post(dedicated, "/predict",
                                  {"workloads": workloads})
            assert routed["model"] == name
            assert [(p["pe_idx"], p["l2_idx"])
                    for p in routed["predictions"]] \
                == [(p["pe_idx"], p["l2_idx"])
                    for p in single["predictions"]]

    def test_models_actually_differ(self, multi_server, problem):
        """The parity test is only meaningful if routing matters."""
        inputs = problem.sample_inputs(64, np.random.default_rng(33))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        _, a = _post(multi_server, "/predict",
                     {"workloads": workloads, "model": "alpha"})
        _, b = _post(multi_server, "/predict",
                     {"workloads": workloads, "model": "beta"})
        assert [p["pe_idx"] for p in a["predictions"]] \
            != [p["pe_idx"] for p in b["predictions"]]

    def test_default_model_serves_requests_without_model_field(
            self, multi_server):
        status, doc = _post(multi_server, "/predict",
                            {"m": 64, "n": 512, "k": 256})
        assert status == 200
        assert doc["model"] == "alpha"

    def test_unknown_model_404_lists_available(self, multi_server):
        status, doc = _post(multi_server, "/predict",
                            {"m": 8, "n": 8, "k": 8, "model": "nope"})
        assert status == 404
        assert "alpha" in doc["error"] and "beta" in doc["error"]

    def test_models_endpoint_lists_routes(self, multi_server):
        status, doc = _get(multi_server, "/models")
        assert status == 200
        assert doc["default_model"] == "alpha"
        by_id = {m["model_id"]: m for m in doc["models"]}
        assert set(by_id) == {"alpha", "beta"}
        assert all(m["loaded"] for m in by_id.values())

    def test_stats_broken_out_per_model(self, multi_server):
        _post(multi_server, "/predict",
              {"m": 8, "n": 8, "k": 8, "model": "beta"})
        _post(multi_server, "/predict", {"m": 8, "n": 8, "k": 8})
        _, stats = _get(multi_server, "/stats")
        assert stats["models"]["beta"]["requests_total"] == 1
        assert stats["models"]["alpha"]["requests_total"] == 1
        # The aggregate view sums the per-model counters.
        assert stats["requests_total"] == 2
        assert stats["default_model"] == "alpha"


class TestRegistryServing:
    @pytest.fixture
    def registry(self, tmp_path, serve_model, second_model) -> ModelRegistry:
        registry = ModelRegistry(tmp_path / "registry")
        registry.save(serve_model, "alpha", scale="tiny")
        registry.save(second_model, "beta", scale="tiny")
        return registry

    def test_artifacts_load_lazily_and_serve_identically(
            self, registry, serve_model, problem):
        inputs = problem.sample_inputs(24, np.random.default_rng(9))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        with DSEServer(registry=registry, port=0,
                       default_model="alpha") as srv:
            _, models = _get(srv, "/models")
            assert not any(m["loaded"] for m in models["models"])
            _, doc = _post(srv, "/predict",
                           {"workloads": workloads, "model": "beta"})
            _, models = _get(srv, "/models")
            loaded = {m["model_id"]: m["loaded"] for m in models["models"]}
            assert loaded == {"alpha": False, "beta": True}
        pe_ref, _ = DSEPredictor(serve_model).predict_indices(inputs)
        # And the default route still resolves through the registry.
        with DSEServer(registry=registry, port=0,
                       default_model="alpha") as srv:
            _, doc = _post(srv, "/predict", {"workloads": workloads})
            assert [p["pe_idx"] for p in doc["predictions"]] \
                == pe_ref.tolist()

    def test_max_models_evicts_least_recently_served(self, registry):
        with DSEServer(registry=registry, port=0, default_model="alpha",
                       max_models=1) as srv:
            _post(srv, "/predict", {"m": 8, "n": 8, "k": 8,
                                    "model": "alpha"})
            _post(srv, "/predict", {"m": 8, "n": 8, "k": 8, "model": "beta"})
            with srv._route_lock:
                assert set(srv.routes) == {"beta"}
            # The evicted model is re-served on demand.
            status, doc = _post(srv, "/predict",
                                {"m": 8, "n": 8, "k": 8, "model": "alpha"})
            assert status == 200 and doc["model"] == "alpha"

    def test_with_cost_does_not_evict_the_serving_route(self, registry):
        """The lazy oracle must come from the *requesting* route's problem;
        going through the default route would evict the live one under
        max_models=1."""
        with DSEServer(registry=registry, port=0, default_model="alpha",
                       max_models=1) as srv:
            status, doc = _post(srv, "/predict",
                                {"m": 8, "n": 8, "k": 8, "model": "beta",
                                 "with_cost": True})
            assert status == 200
            assert doc["predictions"][0]["predicted_cost"] > 0
            with srv._route_lock:
                assert set(srv.routes) == {"beta"}

    def test_model_ids_restricts_servable_set(self, registry):
        with DSEServer(registry=registry, port=0, model_ids=["alpha"]) as srv:
            status, _ = _post(srv, "/predict", {"m": 8, "n": 8, "k": 8})
            assert status == 200
            status, doc = _post(srv, "/predict",
                                {"m": 8, "n": 8, "k": 8, "model": "beta"})
            assert status == 404

    def test_registry_manifest_shown_in_models_listing(self, registry):
        with DSEServer(registry=registry, port=0,
                       default_model="alpha") as srv:
            _, doc = _get(srv, "/models")
            alpha = next(m for m in doc["models"]
                         if m["model_id"] == "alpha")
            assert alpha["kind"] == "airchitect_v2"
            assert alpha["scale"] == "tiny"


class TestSweepStreaming:
    def _post_sweep(self, server, doc):
        req = urllib.request.Request(server.url + "/sweep",
                                     data=json.dumps(doc).encode())
        return urllib.request.urlopen(req, timeout=60)

    def test_sweep_matches_predictor_and_reports_summary(self, server,
                                                         serve_model,
                                                         problem):
        inputs = problem.sample_inputs(250, np.random.default_rng(3))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        with self._post_sweep(server, {"workloads": workloads,
                                       "chunk_size": 64,
                                       "with_cost": True}) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in resp.read().splitlines()]
        header, chunks, summary = lines[0], lines[1:-1], lines[-1]
        assert header["count"] == 250 and header["chunks"] == 4
        assert [c["count"] for c in chunks] == [64, 64, 64, 58]
        served = [p for c in chunks for p in c["predictions"]]
        pe_ref, l2_ref = DSEPredictor(serve_model).predict_indices(inputs)
        assert [p["pe_idx"] for p in served] == pe_ref.tolist()
        assert [p["l2_idx"] for p in served] == l2_ref.tolist()
        assert all(p["predicted_cost"] > 0 for p in served)
        assert summary["done"] and summary["samples_per_sec"] > 0
        _, stats = _get(server, "/stats")
        assert stats["sweeps_total"] == 1
        assert stats["sweep_rows_total"] == 250
        assert stats["sweep_chunks_total"] == 4

    def test_first_chunk_arrives_before_sweep_completes(self, server):
        """The streaming contract: chunk 1 is readable while the server has
        not even *started* computing chunk 2 (gated engine proves it)."""
        route = server._route(None)
        gate = threading.Event()
        calls = []
        real = route.engine.predict_indices

        def gated(inputs):
            if calls:            # every chunk after the first blocks
                assert gate.wait(30), "client never released the gate"
            calls.append(len(inputs))
            return real(inputs)

        route.engine.predict_indices = gated
        try:
            with self._post_sweep(server, {"random": 96, "seed": 5,
                                           "chunk_size": 32}) as resp:
                header = json.loads(resp.readline())
                assert header["chunks"] == 3
                first = json.loads(resp.readline())
                # Chunk 0 fully arrived; chunks 1-2 are still gated.
                assert first["chunk"] == 0 and len(first["predictions"]) == 32
                assert calls == [32]
                gate.set()
                rest = [json.loads(line) for line in resp.read().splitlines()]
        finally:
            route.engine.predict_indices = real
        assert rest[-1]["done"] and calls == [32, 32, 32]

    def test_random_sweep_is_seeded_and_reproducible(self, server):
        def run():
            with self._post_sweep(server, {"random": 40, "seed": 11}) as resp:
                return [json.loads(line) for line in resp.read().splitlines()]
        first, second = run(), run()
        assert first[1]["predictions"] == second[1]["predictions"]

    def test_sweep_routes_by_model(self, server, serve_model):
        with self._post_sweep(server, {"random": 8, "seed": 1,
                                       "model": "default"}) as resp:
            lines = [json.loads(line) for line in resp.read().splitlines()]
        assert lines[0]["model"] == "default"

    @pytest.mark.parametrize("body", [
        {},                                     # no workloads and no random
        {"random": 0},                          # below range
        {"random": "many"},                     # non-integer
        {"workloads": [{"m": 1, "n": 1, "k": 1}], "chunk_size": 0},
        {"workloads": [{"m": 1, "n": 1, "k": 1}], "chunk_size": "big"},
        {"workloads": [{"m": 1, "n": 1, "k": 1, "dataflow": 99}]},
    ], ids=["empty", "random-zero", "random-str", "chunk-zero", "chunk-str",
            "bad-dataflow"])
    def test_malformed_sweep_bodies_400(self, server, body):
        status, doc = _post(server, "/sweep", body)
        assert status == 400
        assert "error" in doc

    def test_sweep_unknown_model_404(self, server):
        status, doc = _post(server, "/sweep", {"random": 8, "model": "ghost"})
        assert status == 404
        assert "ghost" in doc["error"]
