"""End-to-end HTTP smoke tests against an ephemeral-port DSEServer."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import DSEPredictor
from repro.serving import DSEServer


@pytest.fixture
def server(serve_model):
    srv = DSEServer(serve_model, port=0, max_batch_size=16, max_wait_ms=2)
    with srv:
        yield srv


def _get(server: DSEServer, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server: DSEServer, path: str, doc) -> tuple[int, dict]:
    body = json.dumps(doc).encode()
    req = urllib.request.Request(server.url + path, data=body,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, doc = _get(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["uptime_s"] >= 0

    def test_predict_single_workload_matches_predictor(self, server,
                                                       serve_model):
        status, doc = _post(server, "/predict",
                            {"m": 64, "n": 512, "k": 256, "dataflow": 1})
        assert status == 200
        pred = doc["predictions"][0]
        pe, l2 = DSEPredictor(serve_model).predict(64, 512, 256, 1)
        assert pred["num_pes"] == int(pe[0])
        assert pred["l2_kb"] == int(l2[0])

    def test_predict_workload_list_with_cost(self, server, problem):
        workloads = [{"m": 8, "n": 8, "k": 8},
                     {"m": 128, "n": 1024, "k": 512, "dataflow": 2}]
        status, doc = _post(server, "/predict",
                            {"workloads": workloads, "with_cost": True})
        assert status == 200
        assert doc["count"] == 2
        for pred in doc["predictions"]:
            assert pred["num_pes"] in problem.space.pe_choices
            assert pred["predicted_cost"] > 0

    def test_with_oracle_reports_optimum_and_warms_label_cache(self, server,
                                                               problem):
        body = {"workloads": [{"m": 48, "n": 300, "k": 96, "dataflow": 1}],
                "with_oracle": True}
        status, doc = _post(server, "/predict", body)
        assert status == 200
        pred = doc["predictions"][0]
        assert pred["oracle_num_pes"] in problem.space.pe_choices
        assert pred["oracle_cost"] > 0
        # The label is the cheapest config within the oracle's 2%
        # tolerance band, so regret can be marginally negative.
        assert pred["regret"] >= -0.021
        # The repeat request is served from the oracle's label cache —
        # the in-process face of the persistent-cache contract.
        _post(server, "/predict", body)
        _, stats = _get(server, "/stats")
        assert stats["oracle_cache"]["hits"] >= 1

    def test_stats_reflect_traffic(self, server):
        _post(server, "/predict", {"workloads": [
            {"m": 16, "n": 16, "k": 16}, {"m": 32, "n": 32, "k": 32}],
            "with_cost": True})
        status, doc = _get(server, "/stats")
        assert status == 200
        assert doc["requests_total"] >= 2
        assert doc["samples_total"] >= 2
        assert doc["batches_total"] >= 1
        assert doc["forward_passes"] >= 1
        assert doc["mean_batch_size"] > 0
        # with_cost created the lazy oracle, so /stats now reports its
        # label-cache accounting.
        assert "oracle_cache" in doc


class TestConcurrentClients:
    def test_parallel_posts_all_answered_and_batched(self, server,
                                                     serve_model, problem):
        inputs = problem.sample_inputs(12, np.random.default_rng(5))
        answers: dict[int, dict] = {}
        barrier = threading.Barrier(len(inputs))

        def client(i: int) -> None:
            row = inputs[i]
            barrier.wait()
            _, doc = _post(server, "/predict",
                           {"m": int(row[0]), "n": int(row[1]),
                            "k": int(row[2]), "dataflow": int(row[3])})
            answers[i] = doc["predictions"][0]

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(inputs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        pe_ref, _ = DSEPredictor(serve_model).predict_indices(inputs)
        for i in range(len(inputs)):
            assert answers[i]["pe_idx"] == pe_ref[i]
        _, stats = _get(server, "/stats")
        assert stats["forward_passes"] <= len(inputs)


class TestBulkBodies:
    def test_large_body_served_in_one_engine_batch(self, server, serve_model,
                                                   problem):
        """Bodies above max_batch_size bypass the queue: one vectorised
        engine call, not ceil(N/max_batch) coalesced batches."""
        inputs = problem.sample_inputs(200, np.random.default_rng(11))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        status, doc = _post(server, "/predict", {"workloads": workloads})
        assert status == 200
        assert doc["count"] == 200
        pe_ref, _ = DSEPredictor(serve_model).predict_indices(inputs)
        assert [p["pe_idx"] for p in doc["predictions"]] == pe_ref.tolist()
        _, stats = _get(server, "/stats")
        assert stats["requests_total"] == 200
        assert stats["batches_total"] == 1
        assert stats["forward_passes"] == 1     # engine micro-batch >= 200
        # Bulk rows never queued, so they must not dilute the wait mean.
        assert stats["queued_samples"] == 0
        assert stats["mean_queue_wait_ms"] == 0.0


class TestErrorHandling:
    def test_unknown_path_404(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", {})[0] == 404

    def test_bad_content_length_400(self, server):
        import http.client
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/predict")
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            assert "Content-Length" in json.loads(resp.read())["error"]
        finally:
            conn.close()

    def test_error_responses_close_keepalive_connections(self, server):
        """A 400 sent before the body was drained must not leave unread
        bytes to desync the next request on a persistent connection."""
        import http.client
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = b"x" * 128              # never read by the server
            conn.putrequest("POST", "/predict")
            conn.putheader("Content-Length", str(9 << 20))  # over the cap
            conn.endheaders()
            conn.send(body)
            resp = conn.getresponse()
            assert resp.status == 400
            assert resp.getheader("Connection") == "close"
            resp.read()
        finally:
            conn.close()
        # And the server keeps answering fresh connections.
        assert _get(server, "/healthz")[0] == 200

    def test_invalid_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/predict", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    @pytest.mark.parametrize("body", [
        {}, {"workloads": []}, {"workloads": [{"m": 1}]},
        {"workloads": [{"m": 8, "n": 8, "k": 8, "dataflow": 9}]},
        {"workloads": ["not-an-object"]},
    ], ids=["empty", "no-workloads", "missing-keys", "bad-dataflow",
            "non-object"])
    def test_malformed_bodies_400_with_detail(self, server, body):
        status, doc = _post(server, "/predict", body)
        assert status == 400
        assert "error" in doc
