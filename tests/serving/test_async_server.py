"""AsyncDSEServer: parity with the threaded server, plus the SLO
machinery it adds — bounded admission (429 + Retry-After), per-request
timeouts (504), latency histograms in /stats, and graceful drain."""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import AirchitectV2
from repro.serving import AsyncDSEServer, DSEServer

from .conftest import SERVE_MODEL_CONFIG

TRANSIENT_KEYS = ("queue_wait_ms",)     # timing-dependent, never parity


def _get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def _post(server, path, doc, timeout=30):
    req = urllib.request.Request(server.url + path,
                                 data=json.dumps(doc).encode())
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


def _strip_transient(body: bytes) -> dict:
    doc = json.loads(body)
    for pred in doc.get("predictions", ()):
        for key in TRANSIENT_KEYS:
            pred.pop(key, None)
    return doc


@pytest.fixture
def async_server(serve_model):
    srv = AsyncDSEServer(serve_model, port=0, max_batch_size=16,
                         max_wait_ms=2)
    with srv:
        yield srv


@pytest.fixture
def threaded_server(serve_model):
    srv = DSEServer(serve_model, port=0, max_batch_size=16, max_wait_ms=2)
    with srv:
        yield srv


@pytest.fixture
def second_model(problem) -> AirchitectV2:
    return AirchitectV2(SERVE_MODEL_CONFIG, problem,
                        np.random.default_rng(777))


class TestParityWithThreadedServer:
    """Route-by-route parity: the async transport must serve the exact
    same (deterministic) bytes as the threaded one."""

    def test_predict_single_routed_and_bulk(self, async_server,
                                            threaded_server, problem):
        inputs = problem.sample_inputs(40, np.random.default_rng(21))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        bodies = [
            {"m": 64, "n": 512, "k": 256, "dataflow": 1},        # single
            {"workloads": workloads[:8], "model": "default"},    # routed
            {"workloads": workloads, "with_cost": True},         # bulk >16
        ]
        for body in bodies:
            s_async, b_async = _post(async_server, "/predict", body)
            s_thread, b_thread = _post(threaded_server, "/predict", body)
            assert s_async == s_thread == 200
            assert _strip_transient(b_async) == _strip_transient(b_thread)

    def test_models_listing_identical(self, serve_model):
        with AsyncDSEServer(serve_model, port=0) as a, \
                DSEServer(serve_model, port=0) as t:
            s_async, b_async = _get(a, "/models")
            s_thread, b_thread = _get(t, "/models")
        assert s_async == s_thread == 200
        assert b_async == b_thread

    def test_sweep_stream_byte_identical_up_to_summary(self, async_server,
                                                       threaded_server):
        body = {"random": 96, "seed": 7, "chunk_size": 32, "with_cost": True}
        _, b_async = _post(async_server, "/sweep", body)
        _, b_thread = _post(threaded_server, "/sweep", body)
        lines_async = b_async.splitlines()
        lines_thread = b_thread.splitlines()
        # Header + every prediction chunk are byte-identical; only the
        # summary's elapsed/throughput fields are timing-dependent.
        assert lines_async[:-1] == lines_thread[:-1]
        summary_async = json.loads(lines_async[-1])
        summary_thread = json.loads(lines_thread[-1])
        for key in ("elapsed_s", "samples_per_sec"):
            summary_async.pop(key), summary_thread.pop(key)
        assert summary_async == summary_thread

    def test_sweep_content_type_and_ndjson_framing(self, async_server):
        req = urllib.request.Request(
            async_server.url + "/sweep",
            data=json.dumps({"random": 40, "seed": 3,
                             "chunk_size": 16}).encode())
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in resp.read().splitlines()]
        assert lines[0]["chunks"] == 3
        assert [c["count"] for c in lines[1:-1]] == [16, 16, 8]
        assert lines[-1]["done"]

    def test_error_responses_identical(self, async_server, threaded_server):
        cases = [("/predict", {"workloads": []}, 400),
                 ("/predict", {"m": 8, "n": 8, "k": 8, "model": "ghost"},
                  404),
                 ("/predict", "not an object", 400),
                 ("/sweep", {"random": 0}, 400),
                 ("/sweep", {"random": 8, "model": "ghost"}, 404),
                 ("/nope", {"m": 8, "n": 8, "k": 8}, 404)]
        for path, body, expected in cases:
            s_async, b_async = _post(async_server, path, body)
            s_thread, b_thread = _post(threaded_server, path, body)
            assert s_async == s_thread == expected, (path, body)
            assert b_async == b_thread, (path, body)

    def test_multi_model_routing_parity(self, serve_model, second_model,
                                        problem):
        inputs = problem.sample_inputs(24, np.random.default_rng(5))
        workloads = [{"m": int(r[0]), "n": int(r[1]), "k": int(r[2]),
                      "dataflow": int(r[3])} for r in inputs]
        results = {}
        for cls in (AsyncDSEServer, DSEServer):
            srv = cls(serve_model, port=0, max_batch_size=16, max_wait_ms=2,
                      default_model="alpha")
            srv.add_model("beta", second_model)
            with srv:
                results[cls] = {
                    name: _strip_transient(_post(srv, "/predict",
                                                 {"workloads": workloads,
                                                  "model": name})[1])
                    for name in ("alpha", "beta")}
        assert results[AsyncDSEServer] == results[DSEServer]
        assert results[AsyncDSEServer]["alpha"]["predictions"] \
            != results[AsyncDSEServer]["beta"]["predictions"]

    def test_invalid_content_length_parity(self, async_server,
                                           threaded_server):
        responses = {}
        for srv in (async_server, threaded_server):
            host, port = srv.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.putrequest("POST", "/predict")
                conn.putheader("Content-Length", "abc")
                conn.endheaders()
                resp = conn.getresponse()
                responses[srv] = (resp.status, resp.read())
            finally:
                conn.close()
        assert responses[async_server] == responses[threaded_server]
        assert responses[async_server][0] == 400


class TestKeepAlive:
    def test_sequential_requests_reuse_one_connection(self, async_server):
        host, port = async_server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for _ in range(3):
                body = json.dumps({"m": 8, "n": 8, "k": 8})
                conn.request("POST", "/predict", body)
                resp = conn.getresponse()
                assert resp.status == 200
                assert json.loads(resp.read())["count"] == 1
        finally:
            conn.close()

    def test_error_responses_close_the_connection(self, async_server):
        host, port = async_server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/predict")
            conn.putheader("Content-Length", str(9 << 20))   # over the cap
            conn.endheaders()
            conn.send(b"x" * 128)       # body the server never reads
            resp = conn.getresponse()
            assert resp.status == 400
            assert resp.getheader("Connection") == "close"
            resp.read()
        finally:
            conn.close()
        assert _get(async_server, "/healthz")[0] == 200


class _Gate:
    """Patch a route's engine so forward passes block until released."""

    def __init__(self, route):
        self.route = route
        self.real = route.engine.predict_indices
        self.entered = threading.Event()
        self.release = threading.Event()
        route.engine.predict_indices = self._gated

    def _gated(self, inputs):
        self.entered.set()
        assert self.release.wait(30), "test never released the gate"
        return self.real(inputs)

    def restore(self):
        self.release.set()
        self.route.engine.predict_indices = self.real


class TestBackpressure:
    def test_saturated_route_answers_429_with_retry_after(self, serve_model):
        srv = AsyncDSEServer(serve_model, port=0, max_batch_size=4,
                             max_wait_ms=1, max_queue=1, retry_after_s=2.0)
        gate = _Gate(srv._route(None))
        with srv:
            try:
                results = {}

                def occupant():
                    results["first"] = _post(srv, "/predict",
                                             {"m": 8, "n": 8, "k": 8})

                thread = threading.Thread(target=occupant)
                thread.start()
                assert gate.entered.wait(10)    # slot held mid-forward-pass
                status, body = _post(srv, "/predict",
                                     {"m": 16, "n": 16, "k": 16})
                assert status == 429
                doc = json.loads(body)
                assert "admission queue is full" in doc["error"]
                assert "max_queue=1" in doc["error"]
                # And the header itself, via a raw connection.
                host, port = srv.address
                conn = http.client.HTTPConnection(host, port, timeout=10)
                try:
                    conn.request("POST", "/predict",
                                 json.dumps({"m": 8, "n": 8, "k": 8}))
                    resp = conn.getresponse()
                    assert resp.status == 429
                    assert resp.getheader("Retry-After") == "2"
                    resp.read()
                finally:
                    conn.close()
                gate.restore()
                thread.join(10)
                assert results["first"][0] == 200
                # Load subsided: the route admits again.
                assert _post(srv, "/predict",
                             {"m": 8, "n": 8, "k": 8})[0] == 200
            finally:
                gate.restore()

    def test_rejected_requests_never_reach_the_batcher(self, serve_model):
        srv = AsyncDSEServer(serve_model, port=0, max_batch_size=4,
                             max_wait_ms=1, max_queue=1)
        route = srv._route(None)
        gate = _Gate(route)
        with srv:
            try:
                thread = threading.Thread(
                    target=_post, args=(srv, "/predict",
                                        {"m": 8, "n": 8, "k": 8}))
                thread.start()
                assert gate.entered.wait(10)
                for _ in range(3):
                    assert _post(srv, "/predict",
                                 {"m": 8, "n": 8, "k": 8})[0] == 429
                gate.restore()
                thread.join(10)
            finally:
                gate.restore()
        # Only the admitted request was ever counted.
        assert route.stats.requests_total == 1


class TestRequestTimeout:
    def test_slow_route_answers_504(self, serve_model):
        srv = AsyncDSEServer(serve_model, port=0, max_batch_size=4,
                             max_wait_ms=1, request_timeout_s=0.3)
        gate = _Gate(srv._route(None))
        with srv:
            try:
                status, body = _post(srv, "/predict",
                                     {"m": 8, "n": 8, "k": 8})
                assert status == 504
                assert "timed out" in json.loads(body)["error"]
            finally:
                gate.restore()

    def test_timeout_counts_as_an_error_in_stats(self, serve_model):
        srv = AsyncDSEServer(serve_model, port=0, max_batch_size=4,
                             max_wait_ms=1, request_timeout_s=0.3)
        gate = _Gate(srv._route(None))
        with srv:
            try:
                _post(srv, "/predict", {"m": 8, "n": 8, "k": 8})
                gate.restore()
                _, body = _get(srv, "/stats")
                assert json.loads(body)["errors_total"] >= 1
            finally:
                gate.restore()


class TestStatsLatency:
    def test_per_route_latency_percentiles(self, async_server):
        for i in range(5):
            _post(async_server, "/predict", {"m": 8 + i, "n": 8, "k": 8})
        _, body = _get(async_server, "/stats")
        stats = json.loads(body)
        latency = stats["models"]["default"]["latency"]
        assert latency["count"] == 5
        assert 0 < latency["p50_ms"] <= latency["p95_ms"] \
            <= latency["p99_ms"]
        assert latency["p99_ms"] <= latency["max_ms"] * 1.26
        # The aggregate view merges the per-route buckets.
        assert stats["latency"]["count"] == 5
        assert stats["models"]["default"]["inflight"] == 0


class TestGracefulDrain:
    def test_inflight_completes_and_new_requests_are_rejected(
            self, serve_model):
        # max_queue=1: polls that sneak in before the listener closes
        # answer 429 instantly instead of queueing behind the gate.
        srv = AsyncDSEServer(serve_model, port=0, max_batch_size=4,
                             max_wait_ms=1, drain_timeout_s=10.0,
                             max_queue=1)
        gate = _Gate(srv._route(None))
        srv.start()
        results = {}
        try:
            def inflight():
                results["inflight"] = _post(srv, "/predict",
                                            {"m": 8, "n": 8, "k": 8})

            client = threading.Thread(target=inflight)
            client.start()
            assert gate.entered.wait(10)        # request is mid-engine
            shutter = threading.Thread(target=srv.shutdown)
            shutter.start()
            deadline = time.perf_counter() + 10.0
            refused = False
            while time.perf_counter() < deadline and not refused:
                try:
                    # New connections are refused once draining starts.
                    # Short client timeout: a connect that races into the
                    # closing listener's accept backlog is never served
                    # (orphaned, not reset) — that hang is also rejection.
                    _post(srv, "/predict", {"m": 8, "n": 8, "k": 8},
                          timeout=2)
                    time.sleep(0.05)
                except (ConnectionError, OSError, urllib.error.URLError):
                    refused = True      # TimeoutError is an OSError too
            assert refused
            gate.restore()                      # let the in-flight finish
            client.join(15)
            shutter.join(15)
            assert not shutter.is_alive()
            assert results["inflight"][0] == 200
        finally:
            gate.restore()
            srv.shutdown()

    def test_shutdown_is_idempotent(self, serve_model):
        srv = AsyncDSEServer(serve_model, port=0)
        srv.start()
        srv.shutdown()
        srv.shutdown()

    def test_shutdown_without_start(self, serve_model):
        srv = AsyncDSEServer(serve_model, port=0)
        srv.shutdown()
