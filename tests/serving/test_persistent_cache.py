"""Persistent oracle cache: round-trip, warm hit rates, stale rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import DSEProblem, ExhaustiveOracle
from repro.maestro import CostModel, Technology
from repro.serving import PersistentOracleCache, StaleCacheWarning


@pytest.fixture
def cache(tmp_path) -> PersistentOracleCache:
    return PersistentOracleCache(tmp_path / "oracle_cache")


class TestRoundTrip:
    def test_fresh_oracle_warm_starts_with_full_hit_rate(self, problem, rng,
                                                         cache):
        """The cross-process contract: save in one 'process', load in a
        fresh oracle, and the same sweep is served entirely from cache."""
        inputs = problem.sample_inputs(200, rng)
        warm = ExhaustiveOracle(problem)
        reference = warm.solve(inputs)
        assert cache.save(warm) == warm.cache_info().size

        cold = ExhaustiveOracle(problem)
        assert cache.load(cold) > 0
        result = cold.solve(inputs)
        info = cold.cache_info()
        assert info.hits == len(inputs) and info.misses == 0
        assert info.hit_rate == 1.0
        np.testing.assert_array_equal(result.pe_idx, reference.pe_idx)
        np.testing.assert_array_equal(result.l2_idx, reference.l2_idx)
        np.testing.assert_array_equal(result.best_cost, reference.best_cost)

    def test_missing_snapshot_loads_nothing(self, problem, cache):
        assert not cache.exists()
        assert cache.load(ExhaustiveOracle(problem)) == 0

    def test_meta_records_fingerprint_and_entry_count(self, problem, rng,
                                                      cache):
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(50, rng))
        cache.save(oracle)
        meta = cache.read_meta()
        assert meta["fingerprint"] == oracle.labelling_fingerprint()
        assert meta["entries"] == oracle.cache_info().size
        assert meta["tolerance"] == oracle.tolerance


class TestStaleRejection:
    def _saved(self, problem, rng, cache) -> None:
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(30, rng))
        cache.save(oracle)

    @pytest.mark.parametrize("make_stale", [
        lambda p: ExhaustiveOracle(p, tolerance=0.1),
        lambda p: ExhaustiveOracle(DSEProblem(metric="energy")),
        lambda p: ExhaustiveOracle(
            p, cost_model=CostModel(Technology(dram_bandwidth=32.0))),
    ], ids=["tolerance", "metric", "technology"])
    def test_mismatched_fingerprint_refused_with_warning(self, problem, rng,
                                                         cache, make_stale):
        self._saved(problem, rng, cache)
        stale = make_stale(problem)
        with pytest.warns(StaleCacheWarning, match="fingerprint"):
            assert cache.load(stale) == 0
        assert stale.cache_info().size == 0       # cache left untouched

    def test_matching_fingerprint_loads_silently(self, problem, rng, cache,
                                                 recwarn):
        self._saved(problem, rng, cache)
        assert cache.load(ExhaustiveOracle(problem)) > 0
        assert not [w for w in recwarn
                    if isinstance(w.message, StaleCacheWarning)]


class TestExportImportAPI:
    def test_export_preserves_lru_order_and_import_respects_capacity(
            self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        inputs = problem.sample_inputs(40, rng)
        oracle.solve(inputs)
        exported = oracle.export_cache()
        assert len(exported["keys"]) == oracle.cache_info().size

        tiny = ExhaustiveOracle(problem, cache_size=10)
        assert tiny.import_cache(**exported) == 10
        # The *newest* (most recently used) entries survive eviction.
        survivors = set(map(tuple, tiny.export_cache()["keys"].tolist()))
        assert survivors == set(map(tuple,
                                    exported["keys"][-10:].tolist()))

    def test_load_reports_resident_count_not_snapshot_size(self, problem,
                                                           rng, cache):
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(40, rng))
        snapshot_size = oracle.cache_info().size
        cache.save(oracle)
        tiny = ExhaustiveOracle(problem, cache_size=10)
        assert cache.load(tiny) == 10 < snapshot_size
        disabled = ExhaustiveOracle(problem, cache_size=0)
        assert cache.load(disabled) == 0

    def test_import_into_disabled_cache_is_a_noop(self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(5, rng))
        disabled = ExhaustiveOracle(problem, cache_size=0)
        assert disabled.import_cache(**oracle.export_cache()) == 0

    def test_import_does_not_touch_hit_miss_counters(self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(20, rng))
        target = ExhaustiveOracle(problem)
        target.import_cache(**oracle.export_cache())
        info = target.cache_info()
        assert info.hits == 0 and info.misses == 0 and info.size > 0

    def test_fingerprint_stable_across_equivalent_oracles(self, problem):
        a = ExhaustiveOracle(problem)
        b = ExhaustiveOracle(DSEProblem())
        assert a.labelling_fingerprint() == b.labelling_fingerprint()
        c = ExhaustiveOracle(problem, tolerance=0.05)
        assert c.labelling_fingerprint() != a.labelling_fingerprint()
