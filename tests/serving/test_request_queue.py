"""RequestQueue.get_batch deadline semantics under real threads.

The flush policy is the serving layer's latency/throughput contract:
flush as soon as ``max_size`` requests are in hand, else at ``max_wait``
after the first request — and close() must wake waiters immediately,
whether they are blocked on an empty queue or mid-deadline.  Every test
here runs in well under a second.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving.batcher import RequestQueue, _Pending


def _pending() -> _Pending:
    return _Pending(np.array([8, 8, 8, 0], dtype=np.int64))


def _collect_in_thread(queue, max_size, max_wait_s):
    """Run get_batch on a worker thread; returns (thread, result_box)."""
    box = {}

    def run():
        start = time.perf_counter()
        box["batch"] = queue.get_batch(max_size, max_wait_s)
        box["elapsed"] = time.perf_counter() - start

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


class TestFlushOnSize:
    def test_full_batch_returns_without_waiting_the_deadline(self):
        queue = RequestQueue()
        for _ in range(8):
            queue.put(_pending())
        start = time.perf_counter()
        batch = queue.get_batch(8, max_wait_s=30.0)
        assert time.perf_counter() - start < 1.0
        assert len(batch) == 8

    def test_excess_items_stay_queued_for_the_next_batch(self):
        queue = RequestQueue()
        for _ in range(11):
            queue.put(_pending())
        assert len(queue.get_batch(8, 0.01)) == 8
        assert len(queue.get_batch(8, 0.01)) == 3
        assert len(queue) == 0


class TestFlushOnDeadline:
    def test_partial_batch_flushes_at_the_deadline(self):
        queue = RequestQueue()
        queue.put(_pending())
        start = time.perf_counter()
        batch = queue.get_batch(8, max_wait_s=0.05)
        elapsed = time.perf_counter() - start
        assert len(batch) == 1
        # Waited out the deadline (with CI-scheduler slack), not 8 items.
        assert 0.04 <= elapsed < 2.0

    def test_late_arrivals_within_the_deadline_join_the_batch(self):
        queue = RequestQueue()
        queue.put(_pending())
        thread, box = _collect_in_thread(queue, 8, max_wait_s=0.4)
        time.sleep(0.05)
        queue.put(_pending())           # lands inside the wait window
        thread.join(5.0)
        assert not thread.is_alive()
        assert len(box["batch"]) == 2

    def test_blocks_indefinitely_for_the_first_request(self):
        queue = RequestQueue()
        thread, box = _collect_in_thread(queue, 4, max_wait_s=0.02)
        time.sleep(0.1)                 # well past max_wait: still waiting
        assert thread.is_alive()
        queue.put(_pending())
        thread.join(5.0)
        assert not thread.is_alive()
        assert len(box["batch"]) == 1


class TestClose:
    def test_close_while_waiting_empty_returns_none(self):
        queue = RequestQueue()
        thread, box = _collect_in_thread(queue, 4, max_wait_s=30.0)
        time.sleep(0.05)                # let the waiter block
        queue.close()
        thread.join(5.0)
        assert not thread.is_alive()
        assert box["batch"] is None

    def test_close_mid_collection_flushes_the_partial_batch(self):
        queue = RequestQueue()
        queue.put(_pending())
        thread, box = _collect_in_thread(queue, 8, max_wait_s=30.0)
        time.sleep(0.05)                # waiter holds 1 item, mid-deadline
        queue.close()
        thread.join(5.0)
        assert not thread.is_alive()
        assert len(box["batch"]) == 1
        assert box["elapsed"] < 5.0     # woke on close, not the deadline

    def test_pending_items_drain_after_close_then_none(self):
        queue = RequestQueue()
        for _ in range(3):
            queue.put(_pending())
        queue.close()
        assert len(queue.get_batch(8, 0.01)) == 3
        assert queue.get_batch(8, 0.01) is None

    def test_put_after_close_raises(self):
        queue = RequestQueue()
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.put(_pending())
