"""Sharded sweep executor: exact parity with the single-process engine."""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core import BatchedDSEPredictor
from repro.faults import RetryPolicy
from repro.serving import AutoscalePolicy, ShardedSweepExecutor
from repro.serving import sharded as sharded_mod

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _exploding_shard(args):
    """Module-level so the pool can pickle it by reference (fork test)."""
    raise RuntimeError(f"shard {args[0]} exploded")


class TestSharding:
    def test_shards_are_contiguous_and_cover_everything(self, serve_model,
                                                        problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=4,
                                  min_shard_size=10)
        inputs = problem.sample_inputs(103, rng)
        shards = ex.shard(inputs)
        reassembled = np.concatenate([rows for _, rows in shards])
        np.testing.assert_array_equal(reassembled, inputs)
        assert [idx for idx, _ in shards] == list(range(len(shards)))
        assert len(shards) <= 4

    def test_small_sweeps_skip_the_pool(self, serve_model, problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=4,
                                  min_shard_size=256)
        ex.predict_indices(problem.sample_inputs(64, rng))
        assert ex._pool is None        # fallback path, no fork cost
        ex.close()


class TestParity:
    def test_10k_sweep_matches_single_process_exactly(self, serve_model,
                                                      problem):
        """The acceptance gate: 10k workloads, bit-identical shards."""
        inputs = problem.sample_inputs(10_000, np.random.default_rng(7))
        single = BatchedDSEPredictor(serve_model).sweep(inputs)
        with ShardedSweepExecutor(serve_model, num_workers=3,
                                  min_shard_size=64) as ex:
            sharded = ex.sweep(inputs)
        np.testing.assert_array_equal(sharded.pe_idx, single.pe_idx)
        np.testing.assert_array_equal(sharded.l2_idx, single.l2_idx)
        np.testing.assert_array_equal(sharded.num_pes, single.num_pes)
        np.testing.assert_array_equal(sharded.l2_kb, single.l2_kb)

    def test_with_cost_matches_and_reuses_parent_oracle(self, serve_model,
                                                        problem, rng):
        inputs = problem.sample_inputs(300, rng)
        single = BatchedDSEPredictor(serve_model).sweep(inputs,
                                                        with_cost=True)
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32) as ex:
            sharded = ex.sweep(inputs, with_cost=True)
            np.testing.assert_allclose(sharded.predicted_cost,
                                       single.predicted_cost, rtol=1e-12)
            # The cost pass runs in the parent so its oracle accumulates.
            assert ex._default_oracle is not None

    def test_pool_is_reused_across_sweeps(self, serve_model, problem, rng):
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32) as ex:
            ex.predict_indices(problem.sample_inputs(200, rng))
            pool = ex._pool
            ex.predict_indices(problem.sample_inputs(200, rng))
            assert ex._pool is pool    # workers load the model once

    def test_single_worker_never_forks(self, serve_model, problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=1)
        inputs = problem.sample_inputs(600, rng)
        pe, l2 = ex.predict_indices(inputs)
        assert ex._pool is None
        reference = BatchedDSEPredictor(serve_model).predict_indices(inputs)
        np.testing.assert_array_equal(pe, reference[0])
        np.testing.assert_array_equal(l2, reference[1])

    def test_timing_fields_populated(self, serve_model, problem, rng):
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32) as ex:
            result = ex.sweep(problem.sample_inputs(200, rng),
                              with_cost=True)
        assert result.elapsed_s >= result.predict_elapsed_s > 0
        assert result.samples_per_sec > 0


class TestAutoscalePolicy:
    """The policy is a pure function of (sweep size, observations)."""

    def test_tiny_sweeps_stay_single_process(self):
        policy = AutoscalePolicy(max_workers=8, min_shard_size=256)
        decision = policy.decide(100)
        assert decision.workers == 1
        assert "below" in decision.reason

    def test_worker_count_scales_with_sweep_size(self):
        policy = AutoscalePolicy(max_workers=8, min_shard_size=256)
        assert policy.decide(600).workers == 2
        assert policy.decide(1100).workers == 4
        assert policy.decide(100_000).workers == 8     # capped at the ceiling

    def test_shard_size_oversharding_and_floor(self):
        policy = AutoscalePolicy(max_workers=4, min_shard_size=100,
                                 shards_per_worker=2)
        decision = policy.decide(8000)
        assert decision.workers == 4
        assert decision.shard_size == 1000             # 8000 / (4 * 2)
        # The floor wins when oversharding would under-fill shards
        # (700 rows / 8 planned shards = 88-row shards, below the floor).
        assert policy.decide(700).shard_size == 100

    def test_fast_observed_throughput_keeps_sweeps_single_process(self):
        policy = AutoscalePolicy(max_workers=8, min_shard_size=64,
                                 min_pool_gain_s=0.05)
        assert policy.decide(1000).workers > 1
        policy.observe_single(rows=100_000, elapsed_s=0.1)  # 1M rows/s
        decision = policy.decide(1000)                      # ETA 1ms
        assert decision.workers == 1
        assert "ETA" in decision.reason
        # Big enough sweeps still pool despite the fast single rate.
        assert policy.decide(1_000_000).workers == 8

    def test_observations_blend_with_ewma(self):
        policy = AutoscalePolicy(max_workers=4, ewma=0.5)
        policy.observe_pooled(rows=1000, workers=2, elapsed_s=1.0)  # 500/w/s
        policy.observe_pooled(rows=3000, workers=2, elapsed_s=1.0)  # 1500/w/s
        assert policy.pooled_rows_per_worker_s == pytest.approx(1000.0)

    def test_pooled_throughput_feeds_the_plan(self):
        """Observed per-worker rate is part of the decision, not just the
        reason string: a pool observed to be slower than single-process
        (IPC-bound shards) keeps subsequent sweeps in-process."""
        policy = AutoscalePolicy(max_workers=4, min_shard_size=64,
                                 min_pool_gain_s=0.05)
        policy.observe_single(rows=10_000, elapsed_s=1.0)    # 10k rows/s
        policy.observe_pooled(rows=1000, workers=4, elapsed_s=1.0)  # 250/w/s
        decision = policy.decide(2000)
        assert decision.workers == 1
        assert "beats" in decision.reason
        # A pool observed to actually help keeps pooling.
        fast = AutoscalePolicy(max_workers=4, min_shard_size=64,
                               min_pool_gain_s=0.05)
        fast.observe_single(rows=10_000, elapsed_s=1.0)
        fast.observe_pooled(rows=40_000, workers=4, elapsed_s=1.0)
        assert fast.decide(100_000).workers == 4


class TestAutoscaledExecutor:
    def test_autoscaled_results_bit_identical_to_fixed_shards(
            self, serve_model, problem):
        """The acceptance gate: the plan changes, the bits do not."""
        inputs = problem.sample_inputs(3000, np.random.default_rng(17))
        with ShardedSweepExecutor(serve_model, num_workers=3,
                                  min_shard_size=64) as fixed:
            ref_pe, ref_l2 = fixed.predict_indices(inputs)
        with ShardedSweepExecutor(serve_model, num_workers=3,
                                  min_shard_size=64, autoscale=True) as ex:
            pe, l2 = ex.predict_indices(inputs)
            again_pe, again_l2 = ex.predict_indices(inputs)  # warmed policy
        np.testing.assert_array_equal(pe, ref_pe)
        np.testing.assert_array_equal(l2, ref_l2)
        np.testing.assert_array_equal(again_pe, ref_pe)
        np.testing.assert_array_equal(again_l2, ref_l2)

    def test_decision_trace_records_every_sweep(self, serve_model, problem,
                                                rng):
        # min_pool_gain_s=0 disables the ETA shortcut so the 600-row sweep
        # demonstrably pools even on a fast machine.
        policy = AutoscalePolicy(max_workers=2, min_shard_size=64,
                                 min_pool_gain_s=0.0)
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=64, policy=policy) as ex:
            ex.predict_indices(problem.sample_inputs(40, rng))     # single
            ex.predict_indices(problem.sample_inputs(600, rng))    # pooled
            trace = list(ex.decision_trace)
        assert len(trace) == 2
        small, big = trace
        assert small["sweep_size"] == 40 and not small["pooled"]
        assert small["workers"] == 1
        assert big["sweep_size"] == 600 and big["pooled"]
        assert big["workers"] == 2 and big["num_shards"] >= 2
        for record in trace:
            assert record["elapsed_s"] > 0 and record["rows_per_sec"] > 0
            assert "reason" in record

    def test_single_process_observations_feed_the_policy(self, serve_model,
                                                         problem, rng):
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  autoscale=True) as ex:
            ex.predict_indices(problem.sample_inputs(50, rng))
            assert ex.policy.single_rows_per_s is not None


class TestFailurePaths:
    def test_close_is_idempotent(self, serve_model, problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32)
        ex.predict_indices(problem.sample_inputs(200, rng))
        assert ex._pool is not None
        state_dir = ex._state_dir.name
        ex.close()
        assert ex._pool is None and not os.path.isdir(state_dir)
        ex.close()                      # second close is a no-op
        ex.close()

    def test_close_without_pool_is_a_noop(self, serve_model):
        ex = ShardedSweepExecutor(serve_model, num_workers=1)
        ex.close()
        ex.close()

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_worker_crash_recovers_in_process(self, serve_model, problem,
                                              rng, monkeypatch):
        """A shard blowing up in every worker no longer raises: the
        supervisor retries on rebuilt pools, then degrades to in-process
        execution with bit-identical results."""
        monkeypatch.setattr(sharded_mod, "_run_shard", _exploding_shard)
        inputs = problem.sample_inputs(200, rng)
        expected = BatchedDSEPredictor(serve_model).predict_indices(inputs)
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32, mp_context="fork",
                                  retry=RetryPolicy(max_rebuilds=1,
                                                    backoff_base_s=0.0)) as ex:
            pe_idx, l2_idx = ex.predict_indices(inputs)
            assert ex._supervisor.degraded
        np.testing.assert_array_equal(pe_idx, expected[0])
        np.testing.assert_array_equal(l2_idx, expected[1])
        assert ex._pool is None         # context exit cleaned up regardless

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_state_dir_cleaned_up_on_interpreter_exit(self, serve_model,
                                                      tmp_path):
        """An executor abandoned without close() must not leak its
        repro_shard_* state dir (the weakref.finalize backstop)."""
        script = textwrap.dedent("""
            import numpy as np
            from repro.core import AirchitectV2, ModelConfig
            from repro.dse import DSEProblem
            from repro.serving import ShardedSweepExecutor
            problem = DSEProblem()
            model = AirchitectV2(ModelConfig(d_model=16, n_layers=1,
                                             n_heads=2, embed_dim=8),
                                 problem, np.random.default_rng(0))
            ex = ShardedSweepExecutor(model, num_workers=2, min_shard_size=32)
            ex.predict_indices(problem.sample_inputs(128,
                                                     np.random.default_rng(1)))
            print(ex._state_dir.name, flush=True)
            # exits WITHOUT calling ex.close()
        """)
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, timeout=120)
        assert out.returncode == 0, out.stderr
        state_dir = out.stdout.strip().splitlines()[-1]
        assert state_dir.startswith("/") and "repro_shard_" in state_dir
        assert not os.path.isdir(state_dir)
