"""Sharded sweep executor: exact parity with the single-process engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BatchedDSEPredictor
from repro.serving import ShardedSweepExecutor


class TestSharding:
    def test_shards_are_contiguous_and_cover_everything(self, serve_model,
                                                        problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=4,
                                  min_shard_size=10)
        inputs = problem.sample_inputs(103, rng)
        shards = ex.shard(inputs)
        reassembled = np.concatenate([rows for _, rows in shards])
        np.testing.assert_array_equal(reassembled, inputs)
        assert [idx for idx, _ in shards] == list(range(len(shards)))
        assert len(shards) <= 4

    def test_small_sweeps_skip_the_pool(self, serve_model, problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=4,
                                  min_shard_size=256)
        ex.predict_indices(problem.sample_inputs(64, rng))
        assert ex._pool is None        # fallback path, no fork cost
        ex.close()


class TestParity:
    def test_10k_sweep_matches_single_process_exactly(self, serve_model,
                                                      problem):
        """The acceptance gate: 10k workloads, bit-identical shards."""
        inputs = problem.sample_inputs(10_000, np.random.default_rng(7))
        single = BatchedDSEPredictor(serve_model).sweep(inputs)
        with ShardedSweepExecutor(serve_model, num_workers=3,
                                  min_shard_size=64) as ex:
            sharded = ex.sweep(inputs)
        np.testing.assert_array_equal(sharded.pe_idx, single.pe_idx)
        np.testing.assert_array_equal(sharded.l2_idx, single.l2_idx)
        np.testing.assert_array_equal(sharded.num_pes, single.num_pes)
        np.testing.assert_array_equal(sharded.l2_kb, single.l2_kb)

    def test_with_cost_matches_and_reuses_parent_oracle(self, serve_model,
                                                        problem, rng):
        inputs = problem.sample_inputs(300, rng)
        single = BatchedDSEPredictor(serve_model).sweep(inputs,
                                                        with_cost=True)
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32) as ex:
            sharded = ex.sweep(inputs, with_cost=True)
            np.testing.assert_allclose(sharded.predicted_cost,
                                       single.predicted_cost, rtol=1e-12)
            # The cost pass runs in the parent so its oracle accumulates.
            assert ex._default_oracle is not None

    def test_pool_is_reused_across_sweeps(self, serve_model, problem, rng):
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32) as ex:
            ex.predict_indices(problem.sample_inputs(200, rng))
            pool = ex._pool
            ex.predict_indices(problem.sample_inputs(200, rng))
            assert ex._pool is pool    # workers load the model once

    def test_single_worker_never_forks(self, serve_model, problem, rng):
        ex = ShardedSweepExecutor(serve_model, num_workers=1)
        inputs = problem.sample_inputs(600, rng)
        pe, l2 = ex.predict_indices(inputs)
        assert ex._pool is None
        reference = BatchedDSEPredictor(serve_model).predict_indices(inputs)
        np.testing.assert_array_equal(pe, reference[0])
        np.testing.assert_array_equal(l2, reference[1])

    def test_timing_fields_populated(self, serve_model, problem, rng):
        with ShardedSweepExecutor(serve_model, num_workers=2,
                                  min_shard_size=32) as ex:
            result = ex.sweep(problem.sample_inputs(200, rng),
                              with_cost=True)
        assert result.elapsed_s >= result.predict_elapsed_s > 0
        assert result.samples_per_sec > 0
