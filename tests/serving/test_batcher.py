"""Dynamic batcher: coalescing, parity, flush policy, lifecycle."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import BatchedDSEPredictor, DSEPredictor
from repro.serving import DynamicBatcher, ServingStats


def _batcher(model, stats=None, start=False, **kwargs) -> DynamicBatcher:
    stats = stats or ServingStats()
    engine = BatchedDSEPredictor(model, micro_batch_size=1024,
                                 on_batch=stats.record_forward)
    return DynamicBatcher(engine, stats=stats, start=start, **kwargs)


class TestCoalescing:
    def test_queued_requests_coalesce_into_minimal_batches(self, serve_model,
                                                           problem, rng):
        """N queued requests are served in exactly ceil(N/max_batch) passes."""
        batcher = _batcher(serve_model, max_batch_size=8, max_wait_ms=50)
        inputs = problem.sample_inputs(20, rng)
        futures = [batcher.submit(*map(int, row)) for row in inputs]
        batcher.start()
        results = [f.result(30) for f in futures]
        batcher.stop()

        assert batcher.stats.forward_passes == 3       # ceil(20 / 8)
        assert batcher.stats.batches_total == 3
        assert batcher.stats.requests_total == 20
        assert batcher.stats.samples_total == 20
        assert [r.batch_size for r in results[:8]] == [8] * 8

    def test_concurrent_threads_share_forward_passes(self, serve_model,
                                                     problem, rng):
        """Threaded clients: ≤ one pass per request, correct per-thread
        results, and (with a generous wait window) real coalescing."""
        n_clients = 24
        batcher = _batcher(serve_model, max_batch_size=8, max_wait_ms=100,
                           start=True)
        inputs = problem.sample_inputs(n_clients, rng)
        results: dict[int, object] = {}
        barrier = threading.Barrier(n_clients)

        def client(i: int) -> None:
            barrier.wait()
            row = inputs[i]
            results[i] = batcher.predict(*map(int, row), timeout=30)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.stop()

        assert batcher.stats.forward_passes <= n_clients
        # The barrier releases all clients at once into a 100 ms window,
        # so at least some requests must have shared a batch.
        assert batcher.stats.mean_batch_size > 1.0
        pe_ref, l2_ref = DSEPredictor(serve_model).predict_indices(inputs)
        for i in range(n_clients):
            assert results[i].pe_idx == pe_ref[i]
            assert results[i].l2_idx == l2_ref[i]


class TestParityAndResults:
    def test_predictions_identical_to_per_sample_predictor(self, serve_model,
                                                           problem, rng):
        inputs = problem.sample_inputs(40, rng)
        with _batcher(serve_model, max_batch_size=16, max_wait_ms=5,
                      start=True) as batcher:
            served = [batcher.predict(*map(int, row)) for row in inputs]
        pe_ref, l2_ref = DSEPredictor(serve_model).predict_indices(inputs)
        np.testing.assert_array_equal([s.pe_idx for s in served], pe_ref)
        np.testing.assert_array_equal([s.l2_idx for s in served], l2_ref)

    def test_served_prediction_fields(self, serve_model, problem):
        with _batcher(serve_model, start=True) as batcher:
            result = batcher.predict(64, 512, 256, 1)
        assert result.num_pes in problem.space.pe_choices
        assert result.l2_kb in problem.space.l2_choices
        assert result.num_pes == problem.space.pe_choices[result.pe_idx]
        assert result.queue_wait_s >= 0
        assert result.batch_size == 1
        doc = result.as_dict()
        assert doc["m"] == 64 and doc["dataflow"] == 1

    def test_predict_batch_matches_per_sample_and_skips_queue(
            self, serve_model, problem, rng):
        inputs = problem.sample_inputs(150, rng)
        batcher = _batcher(serve_model, max_batch_size=8, start=False)
        served = batcher.predict_batch([tuple(map(int, row))
                                        for row in inputs])
        # Served synchronously without the worker thread ever running.
        pe_ref, l2_ref = DSEPredictor(serve_model).predict_indices(inputs)
        np.testing.assert_array_equal([s.pe_idx for s in served], pe_ref)
        np.testing.assert_array_equal([s.l2_idx for s in served], l2_ref)
        assert batcher.stats.requests_total == 150
        assert batcher.stats.batches_total == 1
        assert all(s.batch_size == 150 for s in served)

    def test_predict_batch_validates_dataflow(self, serve_model):
        batcher = _batcher(serve_model, start=False)
        with pytest.raises(ValueError, match="dataflow"):
            batcher.predict_batch([(8, 8, 8, 9)])

    def test_oversized_dims_are_clamped_like_the_cli(self, serve_model,
                                                     problem):
        with _batcher(serve_model, start=True) as batcher:
            result = batcher.predict(10**6, 10**6, 10**6, 0)
        b = problem.bounds
        assert (result.m, result.n, result.k) == (b.m_max, b.n_max, b.k_max)


class _GatedEngine:
    """Duck-typed engine whose forward pass blocks until released."""

    def __init__(self, problem):
        self.problem = problem
        self.entered = threading.Event()
        self.release = threading.Event()

    def predict_indices(self, inputs):
        self.entered.set()
        assert self.release.wait(30), "test never released the gate"
        zeros = np.zeros(len(inputs), dtype=np.int64)
        return zeros, zeros


class TestCancelledFutures:
    def test_cancelled_future_does_not_kill_the_worker(self, serve_model,
                                                       problem, rng):
        """Regression: set_result on a cancelled future raised
        InvalidStateError, killing the batcher thread and hanging every
        subsequent request on the route."""
        batcher = _batcher(serve_model, max_batch_size=4, max_wait_ms=10)
        inputs = problem.sample_inputs(6, rng)
        futures = [batcher.submit(*map(int, row)) for row in inputs]
        assert futures[2].cancel()          # a client times out mid-queue
        batcher.start()
        for i, future in enumerate(futures):
            if i == 2:
                assert future.cancelled()
            else:
                assert future.result(10) is not None
        # The worker survived the cancelled future and keeps serving.
        assert batcher.running
        assert batcher.predict(8, 8, 8, timeout=10).num_pes > 0
        batcher.stop()

    def test_fully_cancelled_batch_is_skipped(self, serve_model, problem,
                                              rng):
        batcher = _batcher(serve_model, max_batch_size=4, max_wait_ms=10)
        futures = [batcher.submit(*map(int, row))
                   for row in problem.sample_inputs(3, rng)]
        for future in futures:
            assert future.cancel()
        batcher.start()
        assert batcher.predict(8, 8, 8, timeout=10) is not None
        batcher.stop()
        # Cancelled rows never reached the engine or the batch counters.
        assert batcher.stats.samples_total == 1


class TestStopTimeout:
    def test_stop_raises_and_stays_running_when_join_times_out(
            self, problem):
        """Regression: stop() cleared the thread handle even when join()
        expired, so `running` lied and a second start() could race a new
        worker onto the same queue."""
        engine = _GatedEngine(problem)
        batcher = DynamicBatcher(engine, max_batch_size=4, max_wait_ms=1)
        future = batcher.submit(8, 8, 8)
        assert engine.entered.wait(10)      # worker is mid-forward-pass
        with pytest.raises(TimeoutError, match="still draining"):
            batcher.stop(timeout=0.05)
        assert batcher.running              # the worker is still alive
        # start() must not spawn a second worker racing the first.
        batcher.start()
        assert threading.active_count() >= 1
        engine.release.set()
        batcher.stop(timeout=10)            # now the drain completes
        assert not batcher.running
        assert future.result(1) is not None


class TestStatsAccounting:
    def test_submit_on_closed_queue_records_nothing(self, serve_model):
        """Regression: submit() counted the request before the enqueue,
        so a put on a closed queue skewed requests vs served."""
        batcher = _batcher(serve_model, start=True)
        batcher.stop()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(8, 8, 8)
        assert batcher.stats.requests_total == 0

    def test_empty_waits_do_not_poison_wait_percentiles(self):
        stats = ServingStats()
        stats.record_batch(3, ())           # the bulk fast path: no queue
        assert stats.queued_samples == 0
        assert stats.mean_queue_wait_s == 0.0
        stats.record_batch(2, (0.5, 0.5))
        assert stats.queued_samples == 2
        assert stats.mean_queue_wait_s == pytest.approx(0.5)

    def test_predict_batch_engine_failure_counts_an_error(self, serve_model,
                                                          problem):
        batcher = _batcher(serve_model, start=False)

        def boom(inputs):
            raise RuntimeError("engine down")

        batcher.engine.predict_indices = boom
        with pytest.raises(RuntimeError, match="engine down"):
            batcher.predict_batch([(8, 8, 8, 0)])
        assert batcher.stats.errors_total == 1


class TestEmptyBatch:
    def test_predict_batch_rejects_empty_workloads(self, serve_model):
        """Regression: an empty list hit np.stack([]) and escaped as a
        numpy traceback (a 500 at the server layer)."""
        batcher = _batcher(serve_model, start=False)
        with pytest.raises(ValueError, match="non-empty"):
            batcher.predict_batch([])
        assert batcher.stats.requests_total == 0


class TestValidationAndLifecycle:
    def test_bad_dataflow_rejected_at_submit(self, serve_model):
        batcher = _batcher(serve_model)
        with pytest.raises(ValueError, match="dataflow"):
            batcher.submit(8, 8, 8, dataflow=7)

    def test_invalid_policy_rejected(self, serve_model):
        engine = BatchedDSEPredictor(serve_model)
        with pytest.raises(ValueError):
            DynamicBatcher(engine, max_batch_size=0, start=False)
        with pytest.raises(ValueError):
            DynamicBatcher(engine, max_wait_ms=-1, start=False)

    def test_stop_drains_pending_requests(self, serve_model, problem, rng):
        batcher = _batcher(serve_model, max_batch_size=4, max_wait_ms=20)
        futures = [batcher.submit(*map(int, row))
                   for row in problem.sample_inputs(10, rng)]
        batcher.start()
        batcher.stop()
        assert all(f.done() for f in futures)

    def test_submit_after_stop_raises(self, serve_model):
        batcher = _batcher(serve_model, start=True)
        batcher.stop()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(8, 8, 8)


@pytest.mark.slow
class TestSustainedLoad:
    """Soak test (deselected by default; run with `pytest -m slow`)."""

    def test_thousands_of_requests_from_a_client_fleet(self, serve_model,
                                                       problem):
        n_clients, per_client = 16, 250
        inputs = problem.sample_inputs(n_clients * per_client,
                                       np.random.default_rng(99))
        batcher = _batcher(serve_model, max_batch_size=64, max_wait_ms=2,
                           start=True)

        def client(cid: int) -> None:
            for r in range(per_client):
                row = inputs[cid * per_client + r]
                batcher.predict(*map(int, row), timeout=60)

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.stop()

        stats = batcher.stats
        assert stats.requests_total == n_clients * per_client
        assert stats.samples_total == stats.requests_total
        assert stats.errors_total == 0
        assert stats.mean_batch_size > 2.0     # real coalescing under load
        assert stats.forward_passes == stats.batches_total
