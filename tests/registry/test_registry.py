"""The unified model-artifact layer: atomic writes, manifests, LRU, legacy."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.baselines import AirchitectV1, V1Config
from repro.core import AirchitectV2, ModelConfig, Stage1Config, Stage1Trainer
from repro.dse import generate_random_dataset
from repro.nn import load_module, save_module
from repro.registry import (MANIFEST_KEY, ModelRegistry, RegistryError,
                            atomic_savez, read_manifest, read_state)
from repro.train import Checkpointer

MODEL_CONFIG = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                           head_hidden=16, num_buckets=8)


def _v2(problem, seed=0):
    return AirchitectV2(MODEL_CONFIG, problem, np.random.default_rng(seed))


def _assert_same_state(left, right):
    left_state, right_state = left.state_dict(), right.state_dict()
    assert sorted(left_state) == sorted(right_state)
    for key, value in left_state.items():
        np.testing.assert_array_equal(value, right_state[key], err_msg=key)


@pytest.fixture
def registry(tmp_path) -> ModelRegistry:
    return ModelRegistry(tmp_path / "registry")


class TestAtomicSavez:
    def test_writes_and_appends_suffix(self, tmp_path):
        out = atomic_savez(tmp_path / "arr", {"x": np.arange(4)})
        assert out.endswith(".npz") and os.path.isfile(out)
        with np.load(out) as archive:
            np.testing.assert_array_equal(archive["x"], np.arange(4))

    def test_replaces_existing_file_atomically(self, tmp_path):
        path = tmp_path / "arr.npz"
        atomic_savez(path, {"x": np.zeros(2)})
        atomic_savez(path, {"x": np.ones(2)})
        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["x"], np.ones(2))
        # No temp-file litter next to the destination.
        assert os.listdir(tmp_path) == ["arr.npz"]

    def test_creates_parent_directories(self, tmp_path):
        out = atomic_savez(tmp_path / "a" / "b" / "arr", {"x": np.zeros(1)})
        assert os.path.isfile(out)


class TestArtifacts:
    def test_save_load_round_trip_is_bit_identical(self, registry, problem):
        model = _v2(problem, seed=3)
        artifact = registry.save(model, "demo", scale="tiny",
                                 fingerprint={"seed": 3},
                                 metrics={"accuracy": 0.25})
        assert artifact.kind == "airchitect_v2"
        assert artifact.scale == "tiny"
        assert artifact.metrics == {"accuracy": 0.25}
        loaded = registry.load("demo", problem=problem)
        _assert_same_state(model, loaded)
        inputs = problem.sample_inputs(16, np.random.default_rng(1))
        np.testing.assert_array_equal(model.predict_indices(inputs),
                                      loaded.predict_indices(inputs))

    def test_manifest_readable_without_loading_weights(self, registry,
                                                       problem):
        registry.save(_v2(problem), "meta-only", scale="tiny")
        manifest = read_manifest(registry.path_for("meta-only"))
        assert manifest["kind"] == "airchitect_v2"
        assert manifest["config"]["d_model"] == MODEL_CONFIG.d_model
        assert manifest["created_at"] > 0

    def test_list_ids_and_summary(self, registry, problem):
        registry.save(_v2(problem, 1), "group/a", scale="tiny")
        registry.save(_v2(problem, 2), "group/b", scale="tiny")
        assert registry.ids() == ["group/a", "group/b"]
        summary = registry.list()[0].summary()
        assert summary["model_id"] == "group/a"
        assert summary["kind"] == "airchitect_v2"
        assert summary["legacy"] is False

    def test_nested_ids_and_invalid_ids(self, registry, problem):
        registry.save(_v2(problem), "a/b/c")
        assert registry.has("a/b/c")
        for bad in ("", "/abs", "../escape", "a/../../b"):
            with pytest.raises(RegistryError):
                registry.path_for(bad)
        assert not registry.has("../escape")

    def test_delete(self, registry, problem):
        registry.save(_v2(problem), "gone")
        registry.get("gone", problem=problem)
        registry.delete("gone")
        assert not registry.has("gone")
        assert registry.loaded_ids() == []

    def test_v1_baseline_round_trips_through_builder(self, registry, problem):
        config = V1Config(hidden_dims=(16, 16), epochs=1)
        model = AirchitectV1(config, problem, np.random.default_rng(4))
        registry.save(model, "v1")
        loaded = registry.load("v1", problem=problem)
        assert isinstance(loaded, AirchitectV1)
        assert loaded.config.hidden_dims == (16, 16)
        _assert_same_state(model, loaded)


class TestLegacyCompat:
    """Pre-registry ``.npz`` archives keep loading bit-identically."""

    def test_save_module_archive_loads_through_registry(self, registry,
                                                        problem):
        model = _v2(problem, seed=9)
        save_module(model, registry.path_for("legacy"))
        fresh = _v2(problem, seed=0)
        registry.load_into("legacy", fresh)
        _assert_same_state(model, fresh)

    def test_legacy_archive_cannot_self_describe(self, registry, problem):
        save_module(_v2(problem), registry.path_for("legacy"))
        artifact = registry.artifact("legacy")
        assert artifact.legacy and artifact.kind is None
        with pytest.raises(RegistryError, match="no manifest"):
            registry.load("legacy", problem=problem)
        # ... and is not advertised as discoverable.
        assert registry.ids() == []

    def test_load_module_reads_registry_artifacts(self, registry, problem):
        """The inverse direction: old load paths accept new artifacts."""
        model = _v2(problem, seed=7)
        artifact = registry.save(model, "new-format")
        with np.load(artifact.path) as archive:
            assert MANIFEST_KEY in archive.files
        fresh = _v2(problem, seed=0)
        load_module(fresh, artifact.path)
        _assert_same_state(model, fresh)

    def test_missing_artifact_is_a_registry_error(self, registry):
        with pytest.raises(RegistryError, match="no artifact"):
            registry.artifact("absent")

    def test_corrupt_archive_is_skipped_by_discovery(self, registry,
                                                     problem):
        registry.save(_v2(problem), "good")
        # Zip magic + garbage: np.load raises zipfile.BadZipFile on it.
        (registry.root / "corrupt.npz").write_bytes(b"PK\x03\x04garbage")
        (registry.root / "not-a-zip.npz").write_bytes(b"hello")
        assert registry.ids() == ["good"]


class TestLoadedLRU:
    def test_get_returns_one_shared_instance(self, registry, problem):
        registry.save(_v2(problem), "shared")
        first = registry.get("shared", problem=problem)
        assert registry.get("shared", problem=problem) is first

    def test_lru_evicts_least_recently_served(self, tmp_path, problem):
        registry = ModelRegistry(tmp_path, max_loaded=2)
        for i, name in enumerate(["a", "b", "c"]):
            registry.save(_v2(problem, i), name)
        registry.get("a", problem=problem)
        registry.get("b", problem=problem)
        registry.get("a", problem=problem)     # refresh a; b is now stalest
        registry.get("c", problem=problem)
        assert registry.loaded_ids() == ["a", "c"]

    def test_resave_invalidates_cached_instance(self, registry, problem):
        registry.save(_v2(problem, 1), "hot")
        stale = registry.get("hot", problem=problem)
        registry.save(_v2(problem, 2), "hot")
        fresh = registry.get("hot", problem=problem)
        assert fresh is not stale

    def test_read_state_strips_manifest(self, registry, problem):
        artifact = registry.save(_v2(problem), "stripped")
        assert MANIFEST_KEY not in read_state(artifact.path)


class TestCheckpointerRegistration:
    def test_snapshots_register_live_artifacts(self, registry, problem,
                                               tmp_path):
        """Every checkpoint also lands in the registry, metrics included."""
        data = generate_random_dataset(problem, 120,
                                       np.random.default_rng(11))
        model = _v2(problem, seed=5)
        ckpt = Checkpointer(tmp_path / "ck.npz", registry=registry,
                            model_id="inflight")
        history = Stage1Trainer(model, Stage1Config(epochs=2)).train(
            data, callbacks=[ckpt])
        artifact = registry.artifact("inflight")
        assert artifact.kind == "airchitect_v2"
        assert artifact.metrics["epochs_done"] == 2
        assert artifact.metrics["loss"] == history["loss"][-1]
        assert artifact.fingerprint["epochs"] == 2
        # The registered weights are the *final* fitted weights.
        loaded = registry.load("inflight", problem=problem)
        _assert_same_state(model, loaded)

    def test_registry_without_model_id_rejected(self, registry, tmp_path):
        with pytest.raises(ValueError, match="together"):
            Checkpointer(tmp_path / "ck.npz", registry=registry)
