"""Optimisers and schedules: convergence on known problems, update maths."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


def _quadratic_steps(optimizer_cls, steps=200, **kwargs):
    """Minimise ||x - t||^2 from a fixed start; returns final distance."""
    target = np.array([3.0, -2.0, 0.5])
    x = Parameter(np.zeros(3))
    opt = optimizer_cls([x], **kwargs)
    for _ in range(steps):
        loss = ((x - Tensor(target)) ** 2).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(np.abs(x.data - target).max())


class TestConvergence:
    def test_sgd_converges(self):
        assert _quadratic_steps(nn.SGD, lr=0.1) < 1e-6

    def test_sgd_momentum_converges(self):
        assert _quadratic_steps(nn.SGD, lr=0.02, momentum=0.9, steps=400) < 1e-6

    def test_adam_converges(self):
        assert _quadratic_steps(nn.Adam, lr=0.1) < 1e-3

    def test_adamw_converges(self):
        assert _quadratic_steps(nn.AdamW, lr=0.1, weight_decay=1e-4) < 1e-2

    def test_rosenbrock_adam(self):
        """Adam should make strong progress on the classic banana valley."""
        p = Parameter(np.array([-1.0, 1.0]))
        opt = nn.Adam([p], lr=0.02)
        def rosen(t):
            a = t[1] - t[0] ** 2
            b = 1.0 - t[0]
            return (a ** 2) * 100.0 + b ** 2
        start = rosen(Tensor(p.data)).item()
        for _ in range(500):
            loss = rosen(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert rosen(Tensor(p.data)).item() < start * 1e-2


class TestMechanics:
    def test_frozen_params_not_updated(self):
        x = Parameter(np.ones(3))
        x.requires_grad = False
        x.grad = np.ones(3)
        nn.SGD([x], lr=1.0).step()
        np.testing.assert_array_equal(x.data, np.ones(3))

    def test_none_grad_skipped(self):
        x = Parameter(np.ones(3))
        nn.Adam([x]).step()
        np.testing.assert_array_equal(x.data, np.ones(3))

    def test_sgd_single_step_value(self):
        x = Parameter(np.array([1.0]))
        x.grad = np.array([0.5])
        nn.SGD([x], lr=0.2).step()
        np.testing.assert_allclose(x.data, [0.9])

    def test_adam_bias_correction_first_step(self):
        x = Parameter(np.array([0.0]))
        x.grad = np.array([1.0])
        nn.Adam([x], lr=0.1).step()
        # First Adam step magnitude is ~lr regardless of gradient scale.
        np.testing.assert_allclose(x.data, [-0.1], rtol=1e-6)

    def test_weight_decay_shrinks(self):
        x = Parameter(np.array([10.0]))
        x.grad = np.array([0.0])
        nn.SGD([x], lr=0.1, weight_decay=0.5).step()
        assert abs(float(x.data[0])) < 10.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.ones(1))], lr=0.0)

    def test_clip_grad_norm(self):
        x = Parameter(np.ones(4))
        x.grad = np.full(4, 10.0)
        pre = nn.clip_grad_norm([x], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        x = Parameter(np.ones(4))
        x.grad = np.full(4, 0.1)
        nn.clip_grad_norm([x], max_norm=10.0)
        np.testing.assert_allclose(x.grad, 0.1)


class TestSchedules:
    def test_cosine_endpoints(self):
        sched = nn.cosine_schedule(100, min_mult=0.01)
        assert sched(0) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.01)
        assert sched(50) == pytest.approx(0.505, abs=1e-9)

    def test_step_schedule(self):
        sched = nn.step_schedule(10, gamma=0.5)
        assert sched(9) == 1.0
        assert sched(10) == 0.5
        assert sched(25) == 0.25

    def test_warmup_then_decay(self):
        sched = nn.warmup_cosine_schedule(5, 50)
        assert sched(1) == pytest.approx(0.2)
        assert sched(5) == pytest.approx(1.0)
        assert sched(50) < 0.1

    def test_scheduler_updates_optimizer(self):
        x = Parameter(np.ones(1))
        opt = nn.SGD([x], lr=1.0)
        scheduler = nn.LRScheduler(opt, nn.step_schedule(1, gamma=0.1))
        scheduler.step()
        assert opt.lr == pytest.approx(0.1)
        scheduler.step()
        assert opt.lr == pytest.approx(0.01)


class TestOptimizerState:
    def _trained(self, opt_cls, **kwargs):
        x = Parameter(np.ones(3))
        opt = opt_cls([x], **kwargs)
        for _ in range(3):
            x.grad = np.full(3, 0.5)
            opt.step()
        return x, opt

    def test_adam_state_roundtrip_continues_identically(self):
        x1, opt1 = self._trained(nn.Adam, lr=0.1)
        x2 = Parameter(x1.data.copy())
        opt2 = nn.Adam([x2], lr=0.1)
        opt2.load_state_dict(opt1.state_dict())
        for opt, x in ((opt1, x1), (opt2, x2)):
            x.grad = np.full(3, 0.25)
            opt.step()
        np.testing.assert_array_equal(x1.data, x2.data)

    def test_sgd_momentum_state_roundtrip(self):
        x1, opt1 = self._trained(nn.SGD, lr=0.1, momentum=0.9)
        x2 = Parameter(x1.data.copy())
        opt2 = nn.SGD([x2], lr=0.1, momentum=0.9)
        opt2.load_state_dict(opt1.state_dict())
        for opt, x in ((opt1, x1), (opt2, x2)):
            x.grad = np.full(3, 0.25)
            opt.step()
        np.testing.assert_array_equal(x1.data, x2.data)

    def test_state_dict_is_a_copy(self):
        x, opt = self._trained(nn.Adam, lr=0.1)
        state = opt.state_dict()
        state["m"][0][:] = 99.0
        assert not np.array_equal(opt.state_dict()["m"][0], state["m"][0])

    def test_mismatched_shapes_rejected(self):
        _, opt = self._trained(nn.Adam, lr=0.1)
        bad = opt.state_dict()
        bad["m"] = [np.ones(5)]
        fresh = nn.Adam([Parameter(np.ones(3))], lr=0.1)
        with pytest.raises(ValueError):
            fresh.load_state_dict(bad)

    def test_mismatched_count_rejected(self):
        _, opt = self._trained(nn.Adam, lr=0.1)
        bad = opt.state_dict()
        bad["v"] = []
        fresh = nn.Adam([Parameter(np.ones(3))], lr=0.1)
        with pytest.raises(ValueError):
            fresh.load_state_dict(bad)
