"""The lazy graph-capture engine's bit-identity and lifecycle contract.

Replaying a compiled schedule must be indistinguishable — to the last
bit — from running the same steps eagerly: identical loss histories,
identical final weights, and identical gradient-arrival order into every
parameter (``np.testing.assert_array_equal``, no tolerances — the same
contract as ``tests/nn/test_fused.py``).  The lifecycle half covers the
capture cache: shape changes recompile, ``load_state_dict`` needs no
recompile, toggled switches change the key, uncapturable steps fall back
to eager, and the switches themselves never leak state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import AirchitectV2, ModelConfig, Stage2Config, Stage2Trainer
from repro.core.stage2 import _Stage2Task
from repro.dse import DSEProblem, generate_random_dataset
from repro.nn import tensor as tensor_mod
from repro.nn.graph import CaptureError, Tracer, compile_trace
from repro.train import Callback, TrainLoop


# ---------------------------------------------------------------------------
# Op-level roundtrips: trace -> compile -> replay == eager, bit for bit.
# ---------------------------------------------------------------------------

def _roundtrip(build, shapes, n_params=0, param_shape=(4, 3)):
    """Capture ``build`` once, replay it on fresh arrays, compare to eager.

    ``build(tensors, params)`` gets the input arrays pre-wrapped as
    non-grad tensors plus ``n_params`` requires-grad parameter tensors,
    and returns a loss tensor.
    """
    rng = np.random.default_rng(7)
    # A shape entry may also be a prebuilt array (e.g. a bool mask input).
    arrays = [shape if isinstance(shape, np.ndarray)
              else rng.normal(size=shape) for shape in shapes]
    pdata = [rng.normal(size=param_shape) for _ in range(n_params)]

    def run(inputs, params):
        tensors = [nn.Tensor(a) for a in inputs]
        return build(tensors, params)

    # Eager reference on fresh leaves.
    ref_params = [nn.Tensor(d.copy(), requires_grad=True) for d in pdata]
    ref_loss = run(arrays, ref_params)
    ref_loss.backward()

    # Capture (runs eagerly under the tracer), then replay.
    params = [nn.Tensor(d.copy(), requires_grad=True) for d in pdata]
    tracer = Tracer()
    for array in arrays:
        tracer.register_input(array)
    with tensor_mod.tracing(tracer):
        cap_loss = run(arrays, params)
    assert tracer.failed is None, tracer.failed
    compiled = compile_trace(tracer.nodes, tracer.lookup(cap_loss))
    np.testing.assert_array_equal(cap_loss.data, ref_loss.data)

    for _ in range(2):          # replay twice: arena reuse must be clean
        for p in params:
            p.grad = None
        out = compiled.run_forward(tuple(arrays))
        compiled.run_backward()
        np.testing.assert_array_equal(out, ref_loss.data)
        for p, rp in zip(params, ref_params):
            np.testing.assert_array_equal(p.grad, rp.grad)
    return compiled


class TestOpRoundtrips:
    def test_arithmetic_chain(self):
        def build(ts, ps):
            (x,), (w,) = ts, ps
            y = ((x @ w) * 2.0 + 1.0 - x.sum() / 3.0).tanh()
            return (y ** 2).sum()
        _roundtrip(build, [(5, 4)], n_params=1)

    def test_unary_chain_fuses(self):
        def build(ts, ps):
            (x,), (w,) = ts, ps
            return (x @ w).exp().sqrt().log().abs().sigmoid().relu().sum()
        compiled = _roundtrip(build, [(6, 4)], n_params=1)
        # exp/sqrt/log/abs/sigmoid/relu collapse into the matmul's group.
        assert compiled.stats["forward_entries"] < compiled.stats["scheduled"]

    def test_reductions_and_clip(self):
        def build(ts, ps):
            (x,), (w,) = ts, ps
            h = (x @ w).clip(-0.5, 0.5)
            return (h.max(axis=1) + h.sum(axis=1, keepdims=True).squeeze(-1)
                    + h.maximum(0.1).mean()).sum()
        _roundtrip(build, [(5, 4)], n_params=1)

    def test_views_and_shapes(self):
        def build(ts, ps):
            (x,), (w,) = ts, ps
            h = x @ w
            h = h.reshape((3, 1, 5)).squeeze(1).transpose((1, 0))
            h = h.swapaxes(0, 1).expand_dims(0)
            return (h[0, 1:, :] * 2.0).sum()
        _roundtrip(build, [(3, 4)], n_params=1, param_shape=(4, 5))

    def test_concat_stack_where(self):
        mask = np.random.default_rng(9).normal(size=(10, 3)) > 0

        def build(ts, ps):
            (x, y, _), (w,) = ts, ps
            a = x @ w
            b = y @ w
            both = nn.concat([a, b], axis=0) * 0.5
            both = both + nn.stack([a, b], axis=0).sum(axis=0).sum(axis=0)
            # The condition is the registered bool input itself (the
            # Tensor wrapper would promote it to float): replayable.
            return nn.where(mask, both, both * 0.5).sum()
        _roundtrip(build, [(5, 4), (5, 4), mask], n_params=1)

    def test_fused_kernels_trace(self):
        layer = nn.Linear(6, 6, np.random.default_rng(0))
        target = np.full((5, 6), 0.2)   # registered input, like a batch

        def build(ts, ps):
            (x, _) = ts
            h = nn.functional.gelu(layer(x))
            h = nn.functional.softmax(h, axis=-1)
            return nn.mse_loss(h, target)
        with nn.fused_kernels(True):
            for p in layer.parameters():
                p.grad = None
            _roundtrip(build, [(5, 6), target])

    def test_shared_operand_accumulation(self):
        # One tensor feeding many consumers: arrival order is the contract.
        def build(ts, ps):
            (x,), (w,) = ts, ps
            h = x @ w
            return (h * h + h.exp() - h / 2.0 + h.relu()).sum()
        _roundtrip(build, [(5, 4)], n_params=1)

    def test_capture_failure_raises(self):
        x = nn.Tensor(np.ones((4, 4)), requires_grad=True)
        tracer = Tracer()
        with tensor_mod.tracing(tracer):
            # A fresh full-size ndarray leaf is untrackable by design.
            loss = (x * np.random.default_rng(0).normal(size=(4, 4))).sum()
        assert tracer.failed is not None
        assert "untracked" in tracer.failed
        # The failed trace never indexed the loss — and the eager value
        # is untouched by the failure.
        assert tracer.lookup(loss) is None
        assert np.isfinite(loss.item())


# ---------------------------------------------------------------------------
# End-to-end: stage-2 fits, graph on vs off.
# ---------------------------------------------------------------------------

_MODEL = dict(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
              head_hidden=32, num_buckets=8)


@pytest.fixture(scope="module")
def graph_dataset():
    problem = DSEProblem()
    # 250 % 64 != 0: every epoch ends on a partial batch (second cache key).
    data = generate_random_dataset(problem, 250, np.random.default_rng(31))
    return problem, data


def _stage2_fit(problem, dataset, graph, head_style="uov", epochs=3,
                callbacks=(), dropout=0.0, samples=None):
    config = ModelConfig(**_MODEL, head_style=head_style, dropout=dropout)
    model = AirchitectV2(config, problem, np.random.default_rng(0))
    trainer = Stage2Trainer(model, Stage2Config(epochs=epochs, batch_size=64,
                                                seed=1))
    with nn.graph_capture(graph):
        loop = TrainLoop(_Stage2Task(trainer, dataset), callbacks=callbacks)
        history = loop.fit()
    weights = {key: np.array(value, copy=True)
               for key, value in model.state_dict().items()}
    return history, weights, loop.execution, model


def _assert_identical(result_a, result_b):
    history_a, weights_a = result_a[0], result_a[1]
    history_b, weights_b = result_b[0], result_b[1]
    assert history_a == history_b
    assert weights_a.keys() == weights_b.keys()
    for key in weights_a:
        np.testing.assert_array_equal(weights_a[key], weights_b[key])


class TestStage2Parity:
    @pytest.mark.parametrize("head_style", ["uov", "regression"])
    def test_bit_identical_fit(self, graph_dataset, head_style):
        problem, dataset = graph_dataset
        eager = _stage2_fit(problem, dataset, graph=False,
                            head_style=head_style)
        graph = _stage2_fit(problem, dataset, graph=True,
                            head_style=head_style)
        _assert_identical(eager, graph)
        execution = graph[2]
        assert execution["backend"] == "graph"
        # Full batches + the trailing partial batch: two compiled entries.
        assert execution["captures"] == 2
        assert execution["cache_entries"] == 2
        assert execution["replays"] > 0
        assert execution["fallbacks"] == 0
        assert execution["arena_bytes"] > 0

    @pytest.mark.parametrize("head_style", ["classification", "joint"])
    def test_uncapturable_styles_fall_back(self, graph_dataset, head_style):
        # cross_entropy builds a fresh one-hot every step; the tracer
        # rejects it and the fit silently stays eager — and identical.
        problem, dataset = graph_dataset
        eager = _stage2_fit(problem, dataset, graph=False,
                            head_style=head_style)
        graph = _stage2_fit(problem, dataset, graph=True,
                            head_style=head_style)
        _assert_identical(eager, graph)
        execution = graph[2]
        assert execution["replays"] == 0
        assert execution["fallbacks"] > 0
        assert execution["failures"]

    def test_dropout_falls_back(self, graph_dataset):
        # Train-mode dropout draws a fresh mask per step: uncapturable.
        problem, dataset = graph_dataset
        eager = _stage2_fit(problem, dataset, graph=False, dropout=0.3)
        graph = _stage2_fit(problem, dataset, graph=True, dropout=0.3)
        _assert_identical(eager, graph)
        assert graph[2]["replays"] == 0

    def test_gradient_arrival_order(self, graph_dataset, monkeypatch):
        """Replay must hit every parameter in eager's exact arrival order.

        Both paths get one shared pair of recording wrappers (installed
        once — chaining two monkeypatches would double-log), writing to
        whichever log is current.  Each arrival is logged as the raw
        gradient bits; since every parameter's gradients differ, exact
        sequence equality pins both the arrival *order* and the values.
        """
        problem, dataset = graph_dataset
        log: list = []
        accumulate = nn.Tensor._accumulate
        accumulate_owned = nn.Tensor._accumulate_owned

        def wrap_accumulate(self, grad):
            if isinstance(self, nn.Parameter):
                log.append(grad.copy())
            return accumulate(self, grad)

        def wrap_owned(self, grad):
            if isinstance(self, nn.Parameter):
                log.append(grad.copy())
            return accumulate_owned(self, grad)

        monkeypatch.setattr(nn.Tensor, "_accumulate", wrap_accumulate)
        monkeypatch.setattr(nn.Tensor, "_accumulate_owned", wrap_owned)

        _stage2_fit(problem, dataset, graph=False, epochs=2)
        eager_log, log = log, []

        _stage2_fit(problem, dataset, graph=True, epochs=2)
        graph_log = log

        assert len(eager_log) > 0
        assert len(eager_log) == len(graph_log)
        for grad_e, grad_g in zip(eager_log, graph_log):
            np.testing.assert_array_equal(grad_e, grad_g)

    def test_metrics_registry_series(self, graph_dataset):
        from repro.obs import get_registry
        problem, dataset = graph_dataset
        _stage2_fit(problem, dataset, graph=True)
        doc = get_registry().collect()
        assert doc["repro_graph_captures_total"]["series"]["task=stage2"] > 0
        assert doc["repro_graph_replays_total"]["series"]["task=stage2"] > 0
        assert doc["repro_graph_arena_bytes"]["series"]["task=stage2"] > 0


# ---------------------------------------------------------------------------
# Capture-cache invalidation.
# ---------------------------------------------------------------------------

class _MidFitReload(Callback):
    """Snapshot weights at fit start, reload them after the first epoch.

    ``load_state_dict`` copies into the existing parameter arrays, so an
    already-captured schedule (which reads parameter data live) must
    track the reload with no recompile — and stay bit-identical to an
    eager fit doing the same reload.
    """

    def __init__(self):
        self.state = None

    def on_fit_begin(self, loop) -> None:
        self.state = {key: np.array(value, copy=True)
                      for key, value in loop.model.state_dict().items()}

    def on_epoch_end(self, loop) -> None:
        if loop.epoch == 0:
            loop.model.load_state_dict(self.state)


class TestCacheInvalidation:
    def test_partial_batch_gets_own_entry(self, graph_dataset):
        problem, dataset = graph_dataset
        _, _, execution, _ = _stage2_fit(problem, dataset, graph=True)
        keys = {entry for entry in (execution["cache_entries"],)}
        assert keys == {2}
        assert execution["captures"] == 2

    def test_load_state_dict_after_capture(self, graph_dataset):
        problem, dataset = graph_dataset
        eager = _stage2_fit(problem, dataset, graph=False,
                            callbacks=(_MidFitReload(),))
        graph = _stage2_fit(problem, dataset, graph=True,
                            callbacks=(_MidFitReload(),))
        _assert_identical(eager, graph)
        # The reload invalidated nothing: still one capture per shape.
        assert graph[2]["captures"] == 2
        assert graph[2]["replays"] > 0

    def test_toggling_switches_between_fits(self, graph_dataset):
        """fused/graph toggles re-key or bypass the engine, bit-identically."""
        problem, dataset = graph_dataset
        reference = _stage2_fit(problem, dataset, graph=False)

        graphed = _stage2_fit(problem, dataset, graph=True)
        _assert_identical(reference, graphed)

        with nn.fused_kernels(False):
            slow = _stage2_fit(problem, dataset, graph=True)
        _assert_identical(reference, slow)
        # fused off -> stage-2's graph_step declines -> pure eager.
        assert slow[2]["backend"] == "eager"
        assert slow[2]["replays"] == 0

        again = _stage2_fit(problem, dataset, graph=True)
        _assert_identical(reference, again)
        assert again[2]["backend"] == "graph"


# ---------------------------------------------------------------------------
# The switches themselves.
# ---------------------------------------------------------------------------

class TestSwitches:
    def test_graph_capture_exception_safe(self):
        assert nn.graph_enabled()
        with pytest.raises(RuntimeError):
            with nn.graph_capture(False):
                assert not nn.graph_enabled()
                raise RuntimeError("boom")
        assert nn.graph_enabled()

    def test_fused_kernels_exception_safe(self):
        assert nn.fused_enabled()
        with pytest.raises(RuntimeError):
            with nn.fused_kernels(False):
                assert not nn.fused_enabled()
                raise RuntimeError("boom")
        assert nn.fused_enabled()

    def test_nested_scopes(self):
        with nn.graph_capture(False):
            with nn.graph_capture(True):
                assert nn.graph_enabled()
            assert not nn.graph_enabled()
        assert nn.graph_enabled()

    def test_scope_close_is_idempotent(self):
        scope = nn.graph_capture(False)
        assert not nn.graph_enabled()
        scope.close()
        scope.close()
        assert nn.graph_enabled()
