"""Loss functions: reference values, the paper's Eq. 1 and Eq. 3 properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestBasicLosses:
    def test_mse_reference(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        loss = nn.mse_loss(pred, np.array([0.0, 2.0, 5.0]))
        assert loss.item() == pytest.approx((1 + 0 + 4) / 3)

    def test_l1_reference(self):
        pred = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        loss = nn.l1_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss.item() == pytest.approx(np.log(10))

    def test_cross_entropy_confident_correct(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = nn.cross_entropy(Tensor(logits, requires_grad=True),
                                np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_bce_with_logits_matches_naive(self, rng):
        x = rng.normal(size=(5, 3))
        q = rng.random((5, 3))
        out = nn.binary_cross_entropy_with_logits(Tensor(x), q).numpy()
        p = 1.0 / (1.0 + np.exp(-x))
        ref = -q * np.log(p) - (1 - q) * np.log(1 - p)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_bce_extreme_logits_stable(self):
        x = Tensor(np.array([1e4, -1e4]), requires_grad=True)
        out = nn.binary_cross_entropy_with_logits(x, np.array([1.0, 0.0]))
        assert np.isfinite(out.numpy()).all()
        out.sum().backward()
        assert np.isfinite(x.grad).all()


class TestInfoNCE:
    """Properties of the Eq. 1 contrastive loss."""

    def test_perfect_clusters_give_low_loss(self, rng):
        # Two tight, well-separated clusters -> loss near its floor.
        base = np.array([[10.0, 0.0], [-10.0, 0.0]])
        z = np.concatenate([base[0] + rng.normal(0, 0.01, (8, 2)),
                            base[1] + rng.normal(0, 0.01, (8, 2))])
        labels = np.array([0] * 8 + [1] * 8)
        loss_fn = nn.InfoNCELoss(0.4)
        good = loss_fn(Tensor(z, requires_grad=True), labels).item()
        shuffled = labels[rng.permutation(16)]
        bad = loss_fn(Tensor(z, requires_grad=True), shuffled).item()
        assert good < bad

    def test_gradient_pulls_positives_together(self):
        z = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])
        labels = np.array([0, 0, 1, 1])
        t = Tensor(z, requires_grad=True)
        nn.InfoNCELoss(0.4)(t, labels).backward()
        # Moving along -grad must decrease the loss.
        stepped = z - 0.1 * t.grad
        before = nn.InfoNCELoss(0.4)(Tensor(z), labels).item()
        after = nn.InfoNCELoss(0.4)(Tensor(stepped), labels).item()
        assert after < before

    def test_degenerate_batch_all_unique_labels(self, rng):
        z = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = nn.InfoNCELoss(0.4)(z, np.arange(4))
        assert loss.item() == pytest.approx(0.0)
        loss.backward()  # must not crash

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            nn.InfoNCELoss(0.0)

    def test_label_length_validation(self, rng):
        z = Tensor(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            nn.InfoNCELoss()(z, np.zeros(3))

    def test_scale_invariance_of_normalised_embeddings(self, rng):
        z = rng.normal(size=(8, 4))
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        l1 = nn.InfoNCELoss(0.4)(Tensor(z), labels).item()
        l2 = nn.InfoNCELoss(0.4)(Tensor(z * 100.0), labels).item()
        # Invariance up to the normalisation epsilon.
        assert l1 == pytest.approx(l2, rel=1e-6)


class TestUnificationLoss:
    """Properties of the Eq. 3 unification loss."""

    def test_perfect_prediction_near_zero(self, rng):
        from repro.uov import UOVCodec
        codec = UOVCodec(64, 16)
        q = codec.encode(np.array([10, 40, 63]))
        # logits that sigmoid to exactly q (clip away from 0/1)
        qc = np.clip(q, 1e-6, 1 - 1e-6)
        logits = np.log(qc / (1 - qc))
        loss = nn.UnificationLoss()(Tensor(logits, requires_grad=True), q)
        assert loss.item() < 0.05

    def test_farther_buckets_penalised_more(self):
        """Predicting mass far past the true bucket costs more than mass
        just past it (the paper's distance-weighted property)."""
        K = 8
        q = np.zeros((1, K))
        q[0, 0] = 0.5  # truth in bucket 0
        near = np.full((1, K), -10.0)
        near[0, 0] = 0.0
        near[0, 1] = 2.0   # confident mass one bucket past truth
        far = np.full((1, K), -10.0)
        far[0, 0] = 0.0
        far[0, 7] = 2.0    # same mass seven buckets past truth
        loss_near = nn.UnificationLoss()(Tensor(near), q).item()
        loss_far = nn.UnificationLoss()(Tensor(far), q).item()
        # Both are wrong by the same confidence; Eq. 3 weights them equally
        # per-component, so totals match — but *graded* truth (ordinal
        # prefix) penalises distance: use an encoded target.
        from repro.uov import UOVCodec
        codec = UOVCodec(64, K)
        q_enc = codec.encode(np.array([4]))  # truth bucket 1 (SID spacing)
        loss_near = nn.UnificationLoss()(Tensor(near), q_enc).item()
        loss_far = nn.UnificationLoss()(Tensor(far), q_enc).item()
        assert loss_far > loss_near

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            nn.UnificationLoss(alpha=0.0)

    def test_gradient_flows(self, rng):
        logits = Tensor(rng.normal(size=(4, 16)), requires_grad=True)
        q = np.clip(rng.random((4, 16)), 0, 1)
        nn.UnificationLoss()(logits, q).backward()
        assert np.isfinite(logits.grad).all()
        assert np.abs(logits.grad).sum() > 0

    def test_descent_reduces_loss(self, rng):
        from repro.uov import UOVCodec
        codec = UOVCodec(64, 16)
        q = codec.encode(np.array([20, 50]))
        logits = Tensor(rng.normal(size=(2, 16)), requires_grad=True)
        loss_fn = nn.UnificationLoss()
        first = loss_fn(logits, q)
        first.backward()
        stepped = Tensor(logits.numpy() - 1.0 * logits.grad)
        second = loss_fn(stepped, q)
        assert second.item() < first.item()

    def test_gamma_two_variant(self, rng):
        logits = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        q = np.clip(rng.random((3, 8)), 0, 1)
        loss = nn.UnificationLoss(gamma=2.0)(logits, q)
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()
