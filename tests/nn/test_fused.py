"""Bit-identity of the fused kernels vs the op-by-op reference path.

Every fused kernel must produce the exact same forward bits AND the exact
same gradient bits (values and accumulation grouping) as the composed
chain it replaces — ``np.testing.assert_array_equal``, no tolerances.
The end-to-end classes extend the same contract to whole training runs:
fused on vs fused off must give identical loss histories and weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import fused


def _pair(shape, seed, requires_grad=True):
    """The same leaf tensor twice (for reference/fused graph pairs)."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    return (nn.Tensor(data.copy(), requires_grad=requires_grad),
            nn.Tensor(data.copy(), requires_grad=requires_grad))


def _check(build, *leaf_pairs):
    """Run ``build`` under both modes and compare outputs and gradients."""
    ref_leaves = [p[0] for p in leaf_pairs]
    fused_leaves = [p[1] for p in leaf_pairs]
    with fused.fused_kernels(False):
        ref_out = build(*ref_leaves)
        ref_out.backward(np.ones_like(ref_out.data))
    with fused.fused_kernels(True):
        fused_out = build(*fused_leaves)
        fused_out.backward(np.ones_like(fused_out.data))
    np.testing.assert_array_equal(fused_out.data, ref_out.data)
    for ref_leaf, fused_leaf in zip(ref_leaves, fused_leaves):
        if ref_leaf.requires_grad:
            assert (ref_leaf.grad is None) == (fused_leaf.grad is None)
            if ref_leaf.grad is not None:
                np.testing.assert_array_equal(fused_leaf.grad, ref_leaf.grad)


class TestKernels:
    @pytest.mark.parametrize("shape", [(6, 5), (3, 4, 5)])
    def test_linear(self, shape):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(shape[-1], 7))
        b = rng.normal(size=7)
        xr, xf = _pair(shape, 2)
        with fused.fused_kernels(False):
            layer_r = nn.Linear(shape[-1], 7, np.random.default_rng(1))
            layer_r.weight.data[...] = w
            layer_r.bias.data[...] = b
            out_r = (layer_r(xr) * 2.0).sum()
            out_r.backward()
        with fused.fused_kernels(True):
            layer_f = nn.Linear(shape[-1], 7, np.random.default_rng(1))
            layer_f.weight.data[...] = w
            layer_f.bias.data[...] = b
            out_f = (layer_f(xf) * 2.0).sum()
            out_f.backward()
        np.testing.assert_array_equal(out_f.data, out_r.data)
        np.testing.assert_array_equal(xf.grad, xr.grad)
        np.testing.assert_array_equal(layer_f.weight.grad, layer_r.weight.grad)
        np.testing.assert_array_equal(layer_f.bias.grad, layer_r.bias.grad)

    def test_linear_no_bias(self):
        xr, xf = _pair((5, 3), 3)
        with fused.fused_kernels(False):
            lr = nn.Linear(3, 4, np.random.default_rng(1), bias=False)
            (lr(xr) * 3.0).sum().backward()
        with fused.fused_kernels(True):
            lf = nn.Linear(3, 4, np.random.default_rng(1), bias=False)
            (lf(xf) * 3.0).sum().backward()
        np.testing.assert_array_equal(xf.grad, xr.grad)
        np.testing.assert_array_equal(lf.weight.grad, lr.weight.grad)

    @pytest.mark.parametrize("shape", [(7, 9), (2, 5, 6)])
    def test_gelu(self, shape):
        _check(lambda x: (F.gelu(x) * 1.7).sum(), _pair(shape, 4))

    @pytest.mark.parametrize("shape", [(6, 8), (3, 4, 8)])
    def test_layer_norm(self, shape):
        xr, xf = _pair(shape, 5)
        with fused.fused_kernels(False):
            ln_r = nn.LayerNorm(shape[-1])
            ((ln_r(xr)) * 1.3).sum().backward()
        with fused.fused_kernels(True):
            ln_f = nn.LayerNorm(shape[-1])
            ((ln_f(xf)) * 1.3).sum().backward()
        np.testing.assert_array_equal(xf.grad, xr.grad)
        np.testing.assert_array_equal(ln_f.gamma.grad, ln_r.gamma.grad)
        np.testing.assert_array_equal(ln_f.beta.grad, ln_r.beta.grad)

    @pytest.mark.parametrize("shape", [(5, 9), (2, 3, 4, 6)])
    def test_softmax(self, shape):
        _check(lambda x: (F.softmax(x) * 0.7).sum(), _pair(shape, 6))

    @pytest.mark.parametrize("shape", [(5, 9), (4, 3, 7)])
    def test_log_softmax(self, shape):
        _check(lambda x: (F.log_softmax(x) * 0.9).sum(), _pair(shape, 7))

    def test_normalize(self):
        _check(lambda x: (F.normalize(x) * 1.1).sum(), _pair((6, 5), 8))

    def test_scaled_and_plain_matmul(self):
        ar, af = _pair((2, 3, 4, 5), 9)
        br, bf = _pair((2, 3, 5, 4), 10)

        def build_ref():
            with fused.fused_kernels(False):
                out = ((ar @ br) * 0.25 + (ar @ br)).sum()
                out.backward()

        def build_fused():
            with fused.fused_kernels(True):
                out = (fused.scaled_matmul(af, bf, 0.25)
                       + fused.matmul(af, bf)).sum()
                out.backward()

        build_ref()
        build_fused()
        np.testing.assert_array_equal(af.grad, ar.grad)
        np.testing.assert_array_equal(bf.grad, br.grad)

    def test_split_merge_heads(self):
        xr, xf = _pair((3, 4, 8), 11)
        with fused.fused_kernels(False):
            s = xr.reshape(3, 4, 2, 4).swapaxes(1, 2)
            (s.swapaxes(1, 2).reshape(3, 4, 8) * 1.5).sum().backward()
        with fused.fused_kernels(True):
            s = fused.split_heads(xf, 2, 4)
            (fused.merge_heads(s) * 1.5).sum().backward()
        np.testing.assert_array_equal(xf.grad, xr.grad)

    def test_bce_with_logits(self):
        targets = np.random.default_rng(12).random((6, 7))
        _check(lambda x: (nn.binary_cross_entropy_with_logits(x, targets)
                          * 0.6).sum(),
               _pair((6, 7), 13))

    def test_losses(self):
        rng = np.random.default_rng(14)
        target = rng.normal(size=(8, 3))
        _check(lambda x: nn.mse_loss(x, target), _pair((8, 3), 15))
        _check(lambda x: nn.l1_loss(x, target), _pair((8, 3), 16))
        classes = rng.integers(0, 5, size=8)
        _check(lambda x: nn.cross_entropy(x, classes), _pair((8, 5), 17))

    def test_unification_loss(self):
        rng = np.random.default_rng(18)
        q = np.zeros((9, 6))
        q[np.arange(9), rng.integers(0, 6, size=9)] = rng.random(9)
        loss = nn.UnificationLoss(alpha=0.75, gamma=1.0)
        _check(lambda x: loss(x, q), _pair((9, 6), 19))

    def test_unification_loss_gamma_falls_back(self):
        """gamma != 1 keeps the composed path under fused mode."""
        rng = np.random.default_rng(20)
        q = rng.random((4, 5))
        loss = nn.UnificationLoss(alpha=0.75, gamma=2.0)
        _check(lambda x: loss(x, q), _pair((4, 5), 21))

    def test_frozen_inputs_receive_no_grad(self):
        x = nn.Tensor(np.random.default_rng(22).normal(size=(4, 6)),
                      requires_grad=False)
        layer = nn.Linear(6, 3, np.random.default_rng(0))
        out = layer(x).sum()
        out.backward()
        assert x.grad is None
        assert layer.weight.grad is not None


class TestEndToEnd:
    """Whole-model fused-vs-reference bit-identity (the benchmark's
    contract, in miniature, inside tier-1)."""

    def _histories(self, fused_mode):
        from repro.core import (AirchitectV2, ModelConfig, Stage1Config,
                                Stage1Trainer, Stage2Config, Stage2Trainer)
        from repro.dse import DSEProblem, generate_random_dataset

        problem = DSEProblem()
        data = generate_random_dataset(problem, 96,
                                       np.random.default_rng(3))
        config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                             head_hidden=16, num_buckets=8)
        with fused.fused_kernels(fused_mode):
            model = AirchitectV2(config, problem, np.random.default_rng(0))
            h1 = Stage1Trainer(model, Stage1Config(epochs=2)).train(data)
            h2 = Stage2Trainer(model, Stage2Config(epochs=2)).train(data)
            weights = {k: p.data.copy() for k, p in model.named_parameters()}
        return h1, h2, weights

    def test_two_stage_training_identical(self):
        h1_ref, h2_ref, w_ref = self._histories(False)
        h1_fused, h2_fused, w_fused = self._histories(True)
        assert h1_fused == h1_ref
        assert h2_fused == h2_ref
        for key, value in w_ref.items():
            np.testing.assert_array_equal(w_fused[key], value, err_msg=key)

    def test_stage2_with_dropout_stays_identical(self):
        """Active encoder dropout disables the embedding cache (a cached
        embedding would freeze one dropout mask); fused and reference must
        still match bit for bit."""
        from repro.core import (AirchitectV2, ModelConfig, Stage2Config,
                                Stage2Trainer)
        from repro.core.stage2 import _Stage2Task
        from repro.dse import DSEProblem, generate_random_dataset

        problem = DSEProblem()
        data = generate_random_dataset(problem, 64, np.random.default_rng(4))
        config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                             head_hidden=16, num_buckets=8, dropout=0.25)
        histories = {}
        for mode in (False, True):
            with fused.fused_kernels(mode):
                model = AirchitectV2(config, problem,
                                     np.random.default_rng(0))
                trainer = Stage2Trainer(model, Stage2Config(epochs=2))
                assert not _Stage2Task(trainer, data)._embed_cacheable
                histories[mode] = trainer.train(data)
        assert histories[True] == histories[False]
