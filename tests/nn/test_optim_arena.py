"""Flat-arena optimisers: bit-identical steps, checkpoint compatibility.

The arena packs parameters/gradients/moments into contiguous buffers, but
the numeric contract is unchanged: every update must be bit-identical to
the per-parameter reference loop, ``state_dict`` keeps the pre-arena
format (per-parameter arrays), and snapshots written by either
implementation must load into the other and resume bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import fused


def _model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(6, 8, rng), nn.Tanh(), nn.Linear(8, 3, rng))


def _steps(model, opt, n, seed=42, clip=None):
    rng = np.random.default_rng(seed)
    losses = []
    for _ in range(n):
        x = nn.Tensor(rng.normal(size=(12, 6)))
        y = rng.normal(size=(12, 3))
        loss = nn.mse_loss(model(x), y)
        opt.zero_grad()
        loss.backward()
        if clip is not None:
            opt.clip_grad_norm(clip)
        opt.step()
        losses.append(loss.item())
    return losses


@pytest.mark.parametrize("opt_cls,kwargs", [
    (nn.SGD, {"lr": 0.05, "momentum": 0.9}),
    (nn.SGD, {"lr": 0.05, "weight_decay": 0.01}),
    (nn.Adam, {"lr": 1e-2}),
    (nn.Adam, {"lr": 1e-2, "weight_decay": 0.01}),
    (nn.AdamW, {"lr": 1e-2, "weight_decay": 0.05}),
])
def test_arena_step_bit_identical_to_reference(opt_cls, kwargs):
    ref_model = _model()
    with fused.fused_kernels(False):            # no arena
        ref_opt = opt_cls(ref_model.parameters(), **kwargs)
        ref_losses = _steps(ref_model, ref_opt, 5, clip=1.0)
    arena_model = _model()
    arena_opt = opt_cls(arena_model.parameters(), **kwargs)
    assert arena_opt._arena is not None
    arena_losses = _steps(arena_model, arena_opt, 5, clip=1.0)
    assert arena_losses == ref_losses
    for p_ref, p_arena in zip(ref_model.parameters(),
                              arena_model.parameters()):
        np.testing.assert_array_equal(p_arena.data, p_ref.data)


@pytest.mark.parametrize("opt_cls,kwargs", [
    (nn.SGD, {"lr": 0.05, "momentum": 0.9}),
    (nn.Adam, {"lr": 1e-2}),
])
def test_state_roundtrip_resumes_bit_identically(opt_cls, kwargs):
    # Uninterrupted run: 8 steps.
    model_a = _model()
    opt_a = opt_cls(model_a.parameters(), **kwargs)
    losses_a = _steps(model_a, opt_a, 4, seed=1)
    snapshot = {"model": model_a.state_dict(), "opt": opt_a.state_dict()}
    losses_a += _steps(model_a, opt_a, 4, seed=2)

    # Interrupted run: restore the snapshot mid-way and continue.
    model_b = _model(seed=99)                    # different init, overwritten
    opt_b = opt_cls(model_b.parameters(), **kwargs)
    model_b.load_state_dict(snapshot["model"])
    opt_b.load_state_dict(snapshot["opt"])
    losses_b = _steps(model_b, opt_b, 4, seed=2)

    assert losses_b == losses_a[4:]
    for p_a, p_b in zip(model_a.parameters(), model_b.parameters()):
        np.testing.assert_array_equal(p_b.data, p_a.data)


def test_pre_arena_snapshot_loads_into_arena_optimizer(tmp_path):
    """A snapshot produced by the reference (pre-arena) implementation —
    per-parameter moment arrays in an .npz — loads into the arena-backed
    optimiser and resumes bit-identically."""
    with fused.fused_kernels(False):
        model_ref = _model()
        opt_ref = nn.Adam(model_ref.parameters(), lr=1e-2)
        assert opt_ref._arena is None
        _steps(model_ref, opt_ref, 3, seed=5)
        state = opt_ref.state_dict()
        # Persist exactly as train.checkpoint does: flat arrays in an npz.
        path = tmp_path / "pre_arena.npz"
        np.savez(path, step=np.array(state["step"]),
                 **{f"m{i}": m for i, m in enumerate(state["m"])},
                 **{f"v{i}": v for i, v in enumerate(state["v"])},
                 **{f"p{i}": p.data for i, p in
                    enumerate(model_ref.parameters())})
        ref_tail = _steps(model_ref, opt_ref, 3, seed=6)

    with np.load(path) as archive:
        count = sum(1 for k in archive.files if k.startswith("m"))
        loaded = {"step": int(archive["step"]),
                  "m": [archive[f"m{i}"] for i in range(count)],
                  "v": [archive[f"v{i}"] for i in range(count)],
                  "params": [archive[f"p{i}"] for i in range(count)]}

    model_new = _model(seed=7)
    opt_new = nn.Adam(model_new.parameters(), lr=1e-2)
    assert opt_new._arena is not None
    for p, value in zip(model_new.parameters(), loaded["params"]):
        np.copyto(p.data, value)
    opt_new.load_state_dict({"step": loaded["step"], "m": loaded["m"],
                             "v": loaded["v"]})
    new_tail = _steps(model_new, opt_new, 3, seed=6)
    assert new_tail == ref_tail


def test_arena_survives_model_load_state_dict():
    """model.load_state_dict between steps must not detach the arena."""
    model = _model()
    opt = nn.Adam(model.parameters(), lr=1e-2)
    _steps(model, opt, 2)
    snapshot = model.state_dict()
    _steps(model, opt, 2)
    model.load_state_dict(snapshot)              # in-place restore
    _steps(model, opt, 2)
    arena = opt._arena
    for p, view in zip(arena.parameters, arena.param_views):
        assert p.data is view                    # still arena-backed


def test_arena_falls_back_when_a_parameter_gets_no_grad():
    """Legacy semantics for partially-used parameter sets: parameters
    without gradients are skipped entirely (no moment decay)."""
    used = nn.Parameter(np.ones(4))
    unused = nn.Parameter(np.ones(3))
    opt = nn.Adam([used, unused], lr=0.1)
    loss = (used * 2.0).sum()
    opt.zero_grad()
    loss.backward()
    opt.step()
    np.testing.assert_array_equal(unused.data, np.ones(3))
    np.testing.assert_array_equal(opt._m[1], np.zeros(3))
    assert not np.array_equal(used.data, np.ones(4))


def test_frozen_parameters_are_not_updated():
    frozen = nn.Parameter(np.ones(4))
    frozen.requires_grad = False
    live = nn.Parameter(np.ones(4))
    opt = nn.SGD([live, frozen], lr=0.1)
    loss = (live * frozen).sum()
    opt.zero_grad()
    loss.backward()
    opt.step()
    np.testing.assert_array_equal(frozen.data, np.ones(4))
    assert not np.array_equal(live.data, np.ones(4))


def test_module_clip_grad_norm_matches_optimizer_clip():
    model_a, model_b = _model(), _model()
    opt_a = nn.Adam(model_a.parameters(), lr=1e-2)
    opt_b = nn.Adam(model_b.parameters(), lr=1e-2)
    rng = np.random.default_rng(3)
    x = rng.normal(size=(10, 6))
    y = rng.normal(size=(10, 3))
    for model, opt in ((model_a, opt_a), (model_b, opt_b)):
        loss = nn.mse_loss(model(nn.Tensor(x.copy())), y)
        opt.zero_grad()
        loss.backward()
    norm_a = opt_a.clip_grad_norm(0.5)
    norm_b = nn.clip_grad_norm(model_b.parameters(), 0.5)
    assert norm_a == norm_b
    for p_a, p_b in zip(model_a.parameters(), model_b.parameters()):
        np.testing.assert_array_equal(p_a.grad, p_b.grad)
