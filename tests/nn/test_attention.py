"""Transformer components: attention, blocks, down/upsampling units."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        attn = nn.MultiHeadSelfAttention(16, 4, rng)
        out = attn(nn.Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_divisibility_enforced(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3, rng)

    def test_permutation_equivariance(self, rng):
        """Self-attention with no positional encoding commutes with token
        permutations — the defining structural property."""
        attn = nn.MultiHeadSelfAttention(8, 2, rng)
        attn.eval()
        x = rng.normal(size=(1, 6, 8))
        perm = rng.permutation(6)
        with nn.no_grad():
            out = attn(nn.Tensor(x)).numpy()
            out_perm = attn(nn.Tensor(x[:, perm])).numpy()
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)

    def test_gradients_flow_to_all_projections(self, rng):
        attn = nn.MultiHeadSelfAttention(8, 2, rng)
        out = attn(nn.Tensor(rng.normal(size=(2, 3, 8))))
        (out ** 2).sum().backward()
        for p in attn.parameters():
            if p.ndim == 2:  # weights (biases of out_proj may be tiny)
                assert p.grad is not None and np.abs(p.grad).sum() > 0

    def test_attention_rows_are_convex_weights(self, rng):
        """Attention output lies in the convex hull of the value vectors:
        with identical tokens, output equals the single value vector."""
        attn = nn.MultiHeadSelfAttention(8, 2, rng)
        attn.eval()
        token = rng.normal(size=(1, 1, 8))
        x = np.repeat(token, 4, axis=1)
        with nn.no_grad():
            out = attn(nn.Tensor(x)).numpy()
        for t in range(1, 4):
            np.testing.assert_allclose(out[0, t], out[0, 0], atol=1e-10)


class TestTransformerBlock:
    def test_shape_preserved(self, rng):
        block = nn.TransformerBlock(16, 4, rng)
        out = block(nn.Tensor(rng.normal(size=(3, 5, 16))))
        assert out.shape == (3, 5, 16)

    def test_stack_depth(self, rng):
        stack = nn.TransformerStack(3, 8, 2, rng)
        assert len(stack.blocks) == 3
        out = stack(nn.Tensor(rng.normal(size=(2, 4, 8))))
        assert out.shape == (2, 4, 8)

    def test_residual_path_exists(self, rng):
        """Zeroing all attention/ffn weights must leave a layernormed copy
        of the input (residual connections intact)."""
        block = nn.TransformerBlock(8, 2, rng)
        for p in block.attn.parameters() + block.ffn.parameters():
            p.data = np.zeros_like(p.data)
        x = rng.normal(size=(1, 3, 8))
        with nn.no_grad():
            out = block(nn.Tensor(x)).numpy()
        # Two layernorms applied to x itself.
        assert np.isfinite(out).all()
        assert out.std() == pytest.approx(1.0, rel=0.2)


class TestSamplingUnits:
    def test_downsample_shape(self, rng):
        unit = nn.DownsampleUnit(seq_len=4, dim=8, out_dim=6, rng=rng)
        out = unit(nn.Tensor(rng.normal(size=(5, 4, 8))))
        assert out.shape == (5, 6)

    def test_upsample_shape(self, rng):
        unit = nn.UpsampleUnit(in_dim=6, seq_len=4, dim=8, rng=rng)
        out = unit(nn.Tensor(rng.normal(size=(5, 6))))
        assert out.shape == (5, 4, 8)

    def test_down_up_composition(self, rng):
        down = nn.DownsampleUnit(4, 8, 6, rng)
        up = nn.UpsampleUnit(6, 4, 8, rng)
        x = nn.Tensor(rng.normal(size=(2, 4, 8)))
        out = up(down(x))
        assert out.shape == (2, 4, 8)
