"""Data pipeline: ArrayDataset, DataLoader, splits, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestArrayDataset:
    def test_len_and_indexing(self, rng):
        x = rng.normal(size=(10, 3))
        y = np.arange(10)
        ds = nn.ArrayDataset(x, y)
        assert len(ds) == 10
        xs, ys = ds[np.array([1, 3])]
        np.testing.assert_array_equal(xs, x[[1, 3]])
        np.testing.assert_array_equal(ys, [1, 3])

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.ones((5, 2)), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset()

    def test_subset(self, rng):
        ds = nn.ArrayDataset(np.arange(10), np.arange(10) * 2)
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.arrays[1], [0, 10])


class TestDataLoader:
    def test_covers_all_rows_once(self, rng):
        ds = nn.ArrayDataset(np.arange(23))
        loader = nn.DataLoader(ds, batch_size=5)
        seen = np.concatenate([b[0] for b in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(23))

    def test_len_with_and_without_drop_last(self, rng):
        ds = nn.ArrayDataset(np.arange(23))
        assert len(nn.DataLoader(ds, 5)) == 5
        assert len(nn.DataLoader(ds, 5, drop_last=True)) == 4

    def test_drop_last_sizes(self, rng):
        ds = nn.ArrayDataset(np.arange(23))
        sizes = [len(b[0]) for b in nn.DataLoader(ds, 5, drop_last=True)]
        assert sizes == [5, 5, 5, 5]

    def test_shuffle_changes_order_but_not_content(self, rng):
        ds = nn.ArrayDataset(np.arange(100))
        loader = nn.DataLoader(ds, 100, shuffle=True, rng=rng)
        (batch,) = next(iter(loader))
        assert not np.array_equal(batch, np.arange(100))
        np.testing.assert_array_equal(np.sort(batch), np.arange(100))

    def test_shuffle_requires_rng(self):
        ds = nn.ArrayDataset(np.arange(4))
        with pytest.raises(ValueError):
            nn.DataLoader(ds, 2, shuffle=True)

    def test_reshuffles_between_epochs(self, rng):
        ds = nn.ArrayDataset(np.arange(50))
        loader = nn.DataLoader(ds, 50, shuffle=True, rng=rng)
        first = next(iter(loader))[0].copy()
        second = next(iter(loader))[0].copy()
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            nn.DataLoader(nn.ArrayDataset(np.arange(4)), 0)


class TestSplit:
    def test_fraction_respected(self, rng):
        ds = nn.ArrayDataset(np.arange(100))
        train, test = nn.train_test_split(ds, 0.2, rng)
        assert len(test) == 20 and len(train) == 80

    def test_partition_is_disjoint_and_complete(self, rng):
        ds = nn.ArrayDataset(np.arange(50))
        train, test = nn.train_test_split(ds, 0.3, rng)
        merged = np.sort(np.concatenate([train.arrays[0], test.arrays[0]]))
        np.testing.assert_array_equal(merged, np.arange(50))

    def test_invalid_fraction(self, rng):
        ds = nn.ArrayDataset(np.arange(10))
        with pytest.raises(ValueError):
            nn.train_test_split(ds, 1.5, rng)


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        model = nn.Sequential(nn.Linear(3, 4, rng), nn.ReLU(),
                              nn.Linear(4, 2, rng))
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        clone = nn.Sequential(nn.Linear(3, 4, np.random.default_rng(1)),
                              nn.ReLU(),
                              nn.Linear(4, 2, np.random.default_rng(1)))
        nn.load_module(clone, path)
        x = rng.normal(size=(5, 3))
        with nn.no_grad():
            np.testing.assert_array_equal(model(nn.Tensor(x)).numpy(),
                                          clone(nn.Tensor(x)).numpy())

    def test_load_appends_npz_suffix(self, rng, tmp_path):
        model = nn.Linear(2, 2, rng)
        nn.save_module(model, tmp_path / "weights")
        nn.load_module(model, tmp_path / "weights")  # no suffix given
