"""Data pipeline: ArrayDataset, DataLoader, splits, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestArrayDataset:
    def test_len_and_indexing(self, rng):
        x = rng.normal(size=(10, 3))
        y = np.arange(10)
        ds = nn.ArrayDataset(x, y)
        assert len(ds) == 10
        xs, ys = ds[np.array([1, 3])]
        np.testing.assert_array_equal(xs, x[[1, 3]])
        np.testing.assert_array_equal(ys, [1, 3])

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.ones((5, 2)), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset()

    def test_subset(self, rng):
        ds = nn.ArrayDataset(np.arange(10), np.arange(10) * 2)
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.arrays[1], [0, 10])


class TestDataLoader:
    def test_covers_all_rows_once(self, rng):
        ds = nn.ArrayDataset(np.arange(23))
        loader = nn.DataLoader(ds, batch_size=5)
        seen = np.concatenate([b[0] for b in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(23))

    def test_len_with_and_without_drop_last(self, rng):
        ds = nn.ArrayDataset(np.arange(23))
        assert len(nn.DataLoader(ds, 5)) == 5
        assert len(nn.DataLoader(ds, 5, drop_last=True)) == 4

    def test_drop_last_sizes(self, rng):
        ds = nn.ArrayDataset(np.arange(23))
        sizes = [len(b[0]) for b in nn.DataLoader(ds, 5, drop_last=True)]
        assert sizes == [5, 5, 5, 5]

    def test_shuffle_changes_order_but_not_content(self, rng):
        ds = nn.ArrayDataset(np.arange(100))
        loader = nn.DataLoader(ds, 100, shuffle=True, rng=rng)
        (batch,) = next(iter(loader))
        assert not np.array_equal(batch, np.arange(100))
        np.testing.assert_array_equal(np.sort(batch), np.arange(100))

    def test_shuffle_requires_rng(self):
        ds = nn.ArrayDataset(np.arange(4))
        with pytest.raises(ValueError):
            nn.DataLoader(ds, 2, shuffle=True)

    def test_reshuffles_between_epochs(self, rng):
        ds = nn.ArrayDataset(np.arange(50))
        loader = nn.DataLoader(ds, 50, shuffle=True, rng=rng)
        first = next(iter(loader))[0].copy()
        second = next(iter(loader))[0].copy()
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            nn.DataLoader(nn.ArrayDataset(np.arange(4)), 0)


class TestDataLoaderFastPath:
    """The zero-copy batch path: identical batches, loud on mutation."""

    def _batches(self, fast, seed=123, n=37, bs=8, shuffle=True,
                 drop_last=False):
        ds = nn.ArrayDataset(np.arange(n, dtype=np.float64),
                             np.arange(n) * 2.0)
        loader = nn.DataLoader(ds, bs, shuffle=shuffle,
                               rng=np.random.default_rng(seed),
                               drop_last=drop_last, fast=fast)
        return [tuple(np.array(a, copy=True) for a in b) for b in loader]

    @pytest.mark.parametrize("shuffle", [True, False])
    @pytest.mark.parametrize("drop_last", [True, False])
    def test_same_seed_same_batches_either_path(self, shuffle, drop_last):
        slow = self._batches(False, shuffle=shuffle, drop_last=drop_last)
        fast = self._batches(True, shuffle=shuffle, drop_last=drop_last)
        assert len(slow) == len(fast)
        for sb, fb in zip(slow, fast):
            for sa, fa in zip(sb, fb):
                np.testing.assert_array_equal(fa, sa)

    def test_same_seed_same_order_across_epochs(self):
        """Both paths consume the rng identically, epoch after epoch."""
        ds = nn.ArrayDataset(np.arange(20, dtype=np.float64))
        epochs_of = {}
        for fast in (False, True):
            loader = nn.DataLoader(ds, 6, shuffle=True,
                                   rng=np.random.default_rng(7), fast=fast)
            epochs_of[fast] = [[b[0].copy() for b in loader]
                               for _ in range(3)]
        for slow_epoch, fast_epoch in zip(epochs_of[False], epochs_of[True]):
            for sb, fb in zip(slow_epoch, fast_epoch):
                np.testing.assert_array_equal(fb, sb)

    def test_fast_batches_are_readonly(self):
        ds = nn.ArrayDataset(np.arange(10, dtype=np.float64))
        loader = nn.DataLoader(ds, 4, fast=True)
        (batch,) = next(iter(loader))
        with pytest.raises(ValueError):
            batch[0] = 99.0

    def test_mutation_cannot_corrupt_dataset(self):
        """Even on the no-copy path the dataset's arrays stay pristine."""
        data = np.arange(10, dtype=np.float64)
        ds = nn.ArrayDataset(data)
        loader = nn.DataLoader(ds, 4, fast=True)
        for (batch,) in loader:
            with pytest.raises(ValueError):
                batch += 1.0
        np.testing.assert_array_equal(ds.arrays[0], np.arange(10))

    def test_slow_path_batches_stay_writable(self):
        """fast=False preserves the historical copy-per-batch contract."""
        ds = nn.ArrayDataset(np.arange(10, dtype=np.float64))
        loader = nn.DataLoader(ds, 4, fast=False)
        (batch,) = next(iter(loader))
        batch[0] = 99.0  # a copy — mutating it must not touch the dataset
        np.testing.assert_array_equal(ds.arrays[0], np.arange(10))

    def test_default_follows_global_switch(self):
        ds = nn.ArrayDataset(np.arange(8, dtype=np.float64))
        loader = nn.DataLoader(ds, 4)  # fast=None -> fused_enabled()
        with nn.fused_kernels(True):
            (batch,) = next(iter(loader))
            assert not batch.flags.writeable
        with nn.fused_kernels(False):
            (batch,) = next(iter(loader))
            assert batch.flags.writeable


class TestSplit:
    def test_fraction_respected(self, rng):
        ds = nn.ArrayDataset(np.arange(100))
        train, test = nn.train_test_split(ds, 0.2, rng)
        assert len(test) == 20 and len(train) == 80

    def test_partition_is_disjoint_and_complete(self, rng):
        ds = nn.ArrayDataset(np.arange(50))
        train, test = nn.train_test_split(ds, 0.3, rng)
        merged = np.sort(np.concatenate([train.arrays[0], test.arrays[0]]))
        np.testing.assert_array_equal(merged, np.arange(50))

    def test_invalid_fraction(self, rng):
        ds = nn.ArrayDataset(np.arange(10))
        with pytest.raises(ValueError):
            nn.train_test_split(ds, 1.5, rng)


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        model = nn.Sequential(nn.Linear(3, 4, rng), nn.ReLU(),
                              nn.Linear(4, 2, rng))
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        clone = nn.Sequential(nn.Linear(3, 4, np.random.default_rng(1)),
                              nn.ReLU(),
                              nn.Linear(4, 2, np.random.default_rng(1)))
        nn.load_module(clone, path)
        x = rng.normal(size=(5, 3))
        with nn.no_grad():
            np.testing.assert_array_equal(model(nn.Tensor(x)).numpy(),
                                          clone(nn.Tensor(x)).numpy())

    def test_load_appends_npz_suffix(self, rng, tmp_path):
        model = nn.Linear(2, 2, rng)
        nn.save_module(model, tmp_path / "weights")
        nn.load_module(model, tmp_path / "weights")  # no suffix given
