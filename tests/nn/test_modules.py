"""Module system: parameter registration, freezing, state dicts, containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def _mlp(rng):
    return nn.Sequential(nn.Linear(4, 8, rng), nn.ReLU(), nn.Linear(8, 2, rng))


class TestParameterRegistration:
    def test_linear_has_weight_and_bias(self, rng):
        layer = nn.Linear(3, 5, rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(3, 5, rng, bias=False)
        assert set(dict(layer.named_parameters())) == {"weight"}

    def test_nested_names_are_dotted(self, rng):
        model = _mlp(rng)
        names = list(dict(model.named_parameters()))
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters(self, rng):
        model = nn.Linear(3, 5, rng)
        assert model.num_parameters() == 3 * 5 + 5

    def test_parameters_are_tensors_with_grad(self, rng):
        for p in _mlp(rng).parameters():
            assert isinstance(p, nn.Parameter)
            assert p.requires_grad

    def test_modulelist_registers_children(self, rng):
        ml = nn.ModuleList([nn.Linear(2, 2, rng) for _ in range(3)])
        assert len(ml.parameters()) == 6
        assert len(ml) == 3

    def test_modulelist_forward_raises(self, rng):
        ml = nn.ModuleList([nn.Linear(2, 2, rng)])
        with pytest.raises(RuntimeError):
            ml(nn.Tensor(np.ones((1, 2))))


class TestTrainEvalAndFreeze:
    def test_train_eval_propagates(self, rng):
        model = _mlp(rng)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_requires_grad_freeze(self, rng):
        model = _mlp(rng)
        model.requires_grad_(False)
        assert all(not p.requires_grad for p in model.parameters())
        model.requires_grad_(True)
        assert all(p.requires_grad for p in model.parameters())

    def test_frozen_params_get_no_grad(self, rng):
        model = _mlp(rng)
        model.requires_grad_(False)
        out = model(nn.Tensor(np.ones((2, 4)), requires_grad=True))
        out.sum().backward()
        assert all(p.grad is None for p in model.parameters())

    def test_zero_grad_clears(self, rng):
        model = _mlp(rng)
        model(nn.Tensor(np.ones((2, 4)))).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        m1 = _mlp(rng)
        m2 = _mlp(np.random.default_rng(777))
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(),
                                      m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self, rng):
        model = nn.Linear(2, 2, rng)
        state = model.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        model = nn.Linear(2, 2, rng)
        state = model.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        model = nn.Linear(2, 2, rng)
        state = model.state_dict()
        state["ghost"] = np.ones(2)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = nn.Linear(2, 2, rng)
        state = model.state_dict()
        state["weight"] = np.ones((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestSequential:
    def test_forward_chains(self, rng):
        model = _mlp(rng)
        out = model(nn.Tensor(np.ones((5, 4))))
        assert out.shape == (5, 2)

    def test_len_and_getitem(self, rng):
        model = _mlp(rng)
        assert len(model) == 3
        assert isinstance(model[0], nn.Linear)


class TestBuffers:
    def _host(self, rng):
        class Host(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(2, 2, rng)
                self.register_buffer("stat", np.float64(0.0))

        return Host()

    def test_buffer_is_attribute_and_registered(self, rng):
        host = self._host(rng)
        assert float(host.stat) == 0.0
        assert dict(host.named_buffers())["stat"].shape == ()

    def test_assignment_updates_buffer(self, rng):
        host = self._host(rng)
        host.stat = 2.5
        assert float(dict(host.named_buffers())["stat"]) == 2.5

    def test_buffers_excluded_from_parameters(self, rng):
        host = self._host(rng)
        names = [name for name, _ in host.named_parameters()]
        assert "stat" not in names

    def test_state_dict_roundtrip_includes_buffers(self, rng):
        host = self._host(rng)
        host.stat = 7.0
        other = self._host(rng)
        other.load_state_dict(host.state_dict())
        assert float(other.stat) == 7.0

    def test_missing_buffer_key_tolerated(self, rng):
        host = self._host(rng)
        host.stat = 3.0
        state = host.state_dict()
        del state["stat"]
        host.load_state_dict(state)       # params strict, buffers lenient
        assert float(host.stat) == 3.0    # kept its current value

    def test_buffer_shape_mismatch_raises(self, rng):
        host = self._host(rng)
        state = host.state_dict()
        state["stat"] = np.ones(3)
        with pytest.raises(ValueError):
            host.load_state_dict(state)

    def test_nested_buffer_dotted_names(self, rng):
        class Inner(nn.Module):
            def __init__(self):
                super().__init__()
                self.register_buffer("mean", np.zeros(2))

        class Outer(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()

        outer = Outer()
        assert "inner.mean" in dict(outer.named_buffers())
        state = outer.state_dict()
        state["inner.mean"] = np.array([1.0, 2.0])
        outer.load_state_dict(state)
        np.testing.assert_array_equal(outer.inner.mean, [1.0, 2.0])
