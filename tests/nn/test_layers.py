"""Layer behaviour: Linear, LayerNorm, Embedding, Dropout, activations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_affine_map(self, rng):
        layer = nn.Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        out = layer(nn.Tensor(x)).numpy()
        np.testing.assert_allclose(out, x @ layer.weight.data + layer.bias.data)

    def test_batched_3d_input(self, rng):
        layer = nn.Linear(3, 2, rng)
        out = layer(nn.Tensor(rng.normal(size=(2, 5, 3))))
        assert out.shape == (2, 5, 2)

    def test_xavier_scale(self, rng):
        layer = nn.Linear(1000, 1000, rng)
        bound = np.sqrt(6.0 / 2000)
        assert np.abs(layer.weight.data).max() <= bound + 1e-12
        assert layer.weight.data.std() == pytest.approx(bound / np.sqrt(3), rel=0.1)


class TestLayerNorm:
    def test_normalises_last_dim(self, rng):
        ln = nn.LayerNorm(8)
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 8))
        out = ln(nn.Tensor(x)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_params_learnable(self):
        ln = nn.LayerNorm(4)
        assert {n for n, _ in ln.named_parameters()} == {"gamma", "beta"}

    def test_gradcheck(self, rng):
        ln = nn.LayerNorm(6)
        x = nn.Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        (ln(x) ** 2).sum().backward()
        assert np.isfinite(x.grad).all()
        assert np.abs(x.grad).sum() > 0


class TestEmbedding:
    def test_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng)
        out = emb(np.array([1, 3, 1])).numpy()
        np.testing.assert_array_equal(out[0], out[2])
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self, rng):
        emb = nn.Embedding(5, 4, rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))

    def test_gradient_accumulates_for_repeats(self, rng):
        emb = nn.Embedding(5, 4, rng)
        emb(np.array([2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], 2.0 * np.ones(4))
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = nn.Dropout(0.5, rng)
        drop.eval()
        x = rng.normal(size=(8, 8))
        np.testing.assert_array_equal(drop(nn.Tensor(x)).numpy(), x)

    def test_train_mode_scales_survivors(self, rng):
        drop = nn.Dropout(0.5, rng)
        x = np.ones((100, 100))
        out = drop(nn.Tensor(x)).numpy()
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_probability_identity(self, rng):
        drop = nn.Dropout(0.0, rng)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(drop(nn.Tensor(x)).numpy(), x)

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng)


class TestActivations:
    def test_relu_values(self):
        x = nn.Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(nn.ReLU()(x).numpy(), [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(size=100) * 10
        out = nn.Sigmoid()(nn.Tensor(x)).numpy()
        assert ((out > 0) & (out < 1)).all()
        np.testing.assert_allclose(
            nn.Sigmoid()(nn.Tensor(-x)).numpy(), 1.0 - out, atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        out = nn.Sigmoid()(nn.Tensor(np.array([-1e4, 1e4]))).numpy()
        assert np.isfinite(out).all()

    def test_gelu_matches_reference(self):
        x = np.linspace(-3, 3, 31)
        out = nn.GELU()(nn.Tensor(x)).numpy()
        ref = 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x ** 3)))
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_identity(self, rng):
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(nn.Identity()(nn.Tensor(x)).numpy(), x)

    def test_tanh(self):
        x = nn.Tensor(np.array([0.0, 100.0]))
        out = nn.Tanh()(x).numpy()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)
