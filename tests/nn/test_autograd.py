"""Gradient checks: every Tensor op against central finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, concat, stack, where

from ..conftest import finite_difference_gradient


def check_gradient(op, *shapes, arg_index=0, positive=False, tol=1e-5,
                   seed=0):
    """Compare autograd gradient of sum(op(xs)) with finite differences."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) if not positive else rng.uniform(0.5, 2.0, size=s)
              for s in shapes]

    def scalar_fn(x):
        inputs = [a.copy() for a in arrays]
        inputs[arg_index] = x
        with nn.no_grad():
            tensors = [Tensor(a) for a in inputs]
            return float(op(*tensors).sum().numpy())

    tensors = [Tensor(a, requires_grad=(i == arg_index))
               for i, a in enumerate(arrays)]
    out = op(*tensors).sum()
    out.backward()
    numeric = finite_difference_gradient(scalar_fn, arrays[arg_index].copy())
    analytic = tensors[arg_index].grad
    np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_gradient(lambda a, b: a + b, (3, 4), (4,), arg_index=1)

    def test_add_scalar_broadcast(self):
        check_gradient(lambda a, b: a + b, (2, 3, 4), (1, 1, 4), arg_index=1)

    def test_sub(self):
        check_gradient(lambda a, b: a - b, (5,), (5,), arg_index=1)

    def test_mul(self):
        check_gradient(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast(self):
        check_gradient(lambda a, b: a * b, (3, 1), (1, 4), arg_index=0)

    def test_div(self):
        check_gradient(lambda a, b: a / b, (3, 4), (3, 4), arg_index=0,
                       positive=True)

    def test_div_denominator(self):
        check_gradient(lambda a, b: a / b, (3, 4), (3, 4), arg_index=1,
                       positive=True)

    def test_neg(self):
        check_gradient(lambda a: -a, (4, 3))

    def test_pow(self):
        check_gradient(lambda a: a ** 3, (3, 3))

    def test_pow_fractional(self):
        check_gradient(lambda a: a ** 0.5, (6,), positive=True)


class TestMatmulGradients:
    def test_matmul_2d(self):
        check_gradient(lambda a, b: a @ b, (3, 4), (4, 5), arg_index=0)

    def test_matmul_2d_rhs(self):
        check_gradient(lambda a, b: a @ b, (3, 4), (4, 5), arg_index=1)

    def test_matmul_batched(self):
        check_gradient(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5), arg_index=0)

    def test_matmul_batched_rhs(self):
        check_gradient(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5), arg_index=1)

    def test_matmul_broadcast_rhs(self):
        check_gradient(lambda a, b: a @ b, (2, 3, 4), (4, 5), arg_index=1)

    def test_matmul_vector_rhs(self):
        check_gradient(lambda a, b: a @ b, (3, 4), (4,), arg_index=0)

    def test_matmul_vector_lhs(self):
        check_gradient(lambda a, b: a @ b, (4,), (4, 5), arg_index=0)


class TestElementwiseGradients:
    def test_exp(self):
        check_gradient(lambda a: a.exp(), (3, 4))

    def test_log(self):
        check_gradient(lambda a: a.log(), (3, 4), positive=True)

    def test_sqrt(self):
        check_gradient(lambda a: a.sqrt(), (3, 4), positive=True)

    def test_abs(self):
        # Away from zero, |x| is differentiable.
        check_gradient(lambda a: (a + 5.0).abs(), (3, 4), positive=True)

    def test_tanh(self):
        check_gradient(lambda a: a.tanh(), (3, 4))

    def test_sigmoid(self):
        check_gradient(lambda a: a.sigmoid(), (3, 4))

    def test_relu(self):
        check_gradient(lambda a: (a + 3.0).relu(), (3, 4), positive=True)

    def test_clip_interior(self):
        check_gradient(lambda a: a.clip(-10.0, 10.0), (3, 4))

    def test_maximum(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 4))
        b = a + rng.choice([-1.0, 1.0], size=(4, 4))  # no ties
        ta = Tensor(a, requires_grad=True)
        out = ta.maximum(Tensor(b)).sum()
        out.backward()
        np.testing.assert_allclose(ta.grad, (a > b).astype(float))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda a: a.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda a: a.sum(axis=1), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda a: a.sum(axis=0, keepdims=True), (3, 4))

    def test_mean(self):
        check_gradient(lambda a: a.mean(), (3, 4))

    def test_mean_axis(self):
        check_gradient(lambda a: a.mean(axis=-1), (2, 3, 4))

    def test_max(self):
        rng = np.random.default_rng(11)
        x = rng.permutation(12).astype(float).reshape(3, 4)  # unique values
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = (x == x.max(axis=1, keepdims=True)).astype(float)
        np.testing.assert_allclose(t.grad, expected)

    def test_min(self):
        rng = np.random.default_rng(12)
        x = rng.permutation(12).astype(float).reshape(3, 4)
        t = Tensor(x, requires_grad=True)
        t.min(axis=0).sum().backward()
        expected = (x == x.min(axis=0, keepdims=True)).astype(float)
        np.testing.assert_allclose(t.grad, expected)


class TestShapeGradients:
    def test_reshape(self):
        check_gradient(lambda a: (a.reshape(2, 6) ** 2), (3, 4))

    def test_transpose(self):
        check_gradient(lambda a: a.transpose() * 2.0, (3, 4))

    def test_transpose_axes(self):
        check_gradient(lambda a: a.transpose((2, 0, 1)) ** 2, (2, 3, 4))

    def test_swapaxes(self):
        check_gradient(lambda a: a.swapaxes(1, 2) ** 2, (2, 3, 4))

    def test_getitem_slice(self):
        check_gradient(lambda a: a[1:3] ** 2, (5, 4))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])  # repeated index accumulates
        x = np.arange(12.0).reshape(4, 3)
        t = Tensor(x, requires_grad=True)
        t[idx].sum().backward()
        expected = np.zeros_like(x)
        np.testing.assert_allclose(t.grad[0], 1.0)
        np.testing.assert_allclose(t.grad[2], 2.0)
        np.testing.assert_allclose(t.grad[1], 0.0)

    def test_expand_squeeze(self):
        check_gradient(lambda a: a.expand_dims(1).squeeze(1) ** 2, (3, 4))

    def test_concat(self):
        check_gradient(lambda a, b: concat([a, b], axis=1) ** 2,
                       (3, 2), (3, 4), arg_index=1)

    def test_stack(self):
        check_gradient(lambda a, b: stack([a, b], axis=0) ** 2,
                       (3, 4), (3, 4), arg_index=0)

    def test_where(self):
        cond = np.array([[True, False], [False, True]])
        check_gradient(lambda a, b: where(cond, a, b), (2, 2), (2, 2),
                       arg_index=0)
        check_gradient(lambda a, b: where(cond, a, b), (2, 2), (2, 2),
                       arg_index=1)


class TestFunctionalGradients:
    def test_softmax(self):
        check_gradient(lambda a: nn.functional.softmax(a, axis=-1), (3, 5))

    def test_log_softmax(self):
        check_gradient(lambda a: nn.functional.log_softmax(a, axis=-1), (3, 5))

    def test_gelu(self):
        check_gradient(lambda a: nn.functional.gelu(a), (3, 4))

    def test_silu(self):
        check_gradient(lambda a: nn.functional.silu(a), (3, 4))

    def test_normalize(self):
        check_gradient(lambda a: nn.functional.normalize(a), (3, 4))

    def test_logsumexp(self):
        check_gradient(lambda a: nn.functional.logsumexp(a, axis=1), (3, 5))


class TestGraphMechanics:
    def test_grad_accumulation_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0  # x used twice
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x.exp()
        out = (a * b).sum()
        out.backward()
        expected = 2.0 * np.exp(1.5) + 2.0 * 1.5 * np.exp(1.5)
        np.testing.assert_allclose(x.grad, [expected], rtol=1e-10)

    def test_backward_requires_grad_flag(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach() * x
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_second_backward_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_with_gradient_argument(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_integer_input_promoted(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64
