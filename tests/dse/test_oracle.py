"""Exhaustive oracle: exactness, tolerance rule, cost_at consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import DSEProblem, ExhaustiveOracle
from repro.maestro import CostModel


class TestExactness:
    def test_strict_oracle_matches_manual_argmin(self, problem, rng):
        oracle = ExhaustiveOracle(problem, tolerance=0.0)
        inputs = problem.sample_inputs(20, rng)
        result = oracle.solve(inputs, keep_grid=True)
        for i in range(20):
            grid = result.cost_grid[i]
            arg = np.unravel_index(np.argmin(grid), grid.shape)
            assert (result.pe_idx[i], result.l2_idx[i]) == arg
            assert result.best_cost[i] == pytest.approx(grid.min())

    def test_label_cost_is_true_cost(self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        inputs = problem.sample_inputs(10, rng)
        result = oracle.solve(inputs)
        recomputed = oracle.cost_at(inputs, result.pe_idx, result.l2_idx)
        np.testing.assert_allclose(recomputed, result.best_cost, rtol=1e-12)


class TestToleranceRule:
    def test_tolerant_label_within_tolerance_of_min(self, problem, rng):
        tol = 0.05
        oracle = ExhaustiveOracle(problem, tolerance=tol)
        inputs = problem.sample_inputs(30, rng)
        result = oracle.solve(inputs, keep_grid=True)
        mins = result.cost_grid.reshape(30, -1).min(axis=1)
        assert (result.best_cost <= mins * (1 + tol) + 1e-9).all()

    def test_tolerant_label_is_cheapest_acceptable(self, problem, rng):
        """No acceptable config may precede the label in grid order."""
        tol = 0.05
        oracle = ExhaustiveOracle(problem, tolerance=tol)
        inputs = problem.sample_inputs(10, rng)
        result = oracle.solve(inputs, keep_grid=True)
        for i in range(10):
            flat = result.cost_grid[i].reshape(-1)
            label = result.pe_idx[i] * problem.space.n_l2 + result.l2_idx[i]
            acceptable = flat <= flat.min() * (1 + tol)
            assert acceptable[label]
            assert not acceptable[:label].any()

    def test_zero_tolerance_recovers_argmin(self, problem, rng):
        inputs = problem.sample_inputs(15, rng)
        strict = ExhaustiveOracle(problem, tolerance=0.0).solve(inputs)
        manual = ExhaustiveOracle(problem, tolerance=0.0).solve(inputs,
                                                                keep_grid=True)
        np.testing.assert_array_equal(strict.pe_idx, manual.pe_idx)

    def test_tolerance_prefers_cheaper_resources(self, problem, rng):
        """Relaxing the tolerance can only move labels toward cheaper
        (earlier-ordered) configurations."""
        inputs = problem.sample_inputs(40, rng)
        strict = ExhaustiveOracle(problem, tolerance=0.0).solve(inputs)
        loose = ExhaustiveOracle(problem, tolerance=0.10).solve(inputs)
        strict_label = strict.pe_idx * problem.space.n_l2 + strict.l2_idx
        loose_label = loose.pe_idx * problem.space.n_l2 + loose.l2_idx
        assert (loose_label <= strict_label).all()

    def test_negative_tolerance_rejected(self, problem):
        with pytest.raises(ValueError):
            ExhaustiveOracle(problem, tolerance=-0.1)


class TestMetricVariants:
    def test_energy_oracle_differs_from_latency(self, rng):
        lat_problem = DSEProblem(metric="latency")
        en_problem = DSEProblem(metric="energy")
        inputs = lat_problem.sample_inputs(50, rng)
        lat = ExhaustiveOracle(lat_problem).solve(inputs)
        en = ExhaustiveOracle(en_problem).solve(inputs)
        # Energy optima favour fewer resources; labels must differ somewhere.
        assert (lat.pe_idx != en.pe_idx).any() or (lat.l2_idx != en.l2_idx).any()

    def test_dataflow_groups_handled(self, problem):
        oracle = ExhaustiveOracle(problem)
        inputs = np.array([[64, 64, 64, 0], [64, 64, 64, 1], [64, 64, 64, 2]])
        result = oracle.solve(inputs)
        assert len(result.pe_idx) == 3
        assert np.isfinite(result.best_cost).all()
