"""Design space: Table-I structure, encodings, snapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import DesignSpace, default_space


class TestTableIStructure:
    def test_64_pe_choices(self, problem):
        assert problem.space.n_pe == 64

    def test_12_buffer_choices(self, problem):
        assert problem.space.n_l2 == 12

    def test_768_design_points(self, problem):
        assert problem.space.size == 768

    def test_complexity_order_1e9(self, problem):
        assert 1e9 < problem.bounds.complexity < 1e10


class TestEncodings:
    def test_flat_label_roundtrip(self, problem):
        space = problem.space
        pe = np.arange(space.n_pe).repeat(space.n_l2)
        l2 = np.tile(np.arange(space.n_l2), space.n_pe)
        labels = space.flat_label(pe, l2)
        np.testing.assert_array_equal(labels, np.arange(space.size))
        back_pe, back_l2 = space.unflatten(labels)
        np.testing.assert_array_equal(back_pe, pe)
        np.testing.assert_array_equal(back_l2, l2)

    def test_values_lookup(self, problem):
        space = problem.space
        pes, l2 = space.values(0, 0)
        assert pes == space.pe_choices[0]
        assert l2 == space.l2_choices[0]

    def test_grid_shapes(self, problem):
        pes, l2 = problem.space.grid()
        assert pes.shape == (64, 12) and l2.shape == (64, 12)

    def test_snap_exact_values(self, problem):
        space = problem.space
        idx = space.snap_pe(space.pe_choices.astype(float))
        np.testing.assert_array_equal(idx, np.arange(space.n_pe))

    def test_snap_between_values(self, problem):
        space = problem.space
        # 11 is closer to 8 than 16
        assert int(space.snap_pe(11.0)) == 0
        assert int(space.snap_pe(13.0)) == 1

    def test_snap_out_of_range_clamps(self, problem):
        space = problem.space
        assert int(space.snap_pe(1e9)) == space.n_pe - 1
        assert int(space.snap_l2(0.0)) == 0

    def test_random_point_in_range(self, problem, rng):
        for _ in range(20):
            pe, l2 = problem.space.random_point(rng)
            assert 0 <= pe < 64 and 0 <= l2 < 12


class TestValidation:
    def test_choices_must_increase(self):
        with pytest.raises(ValueError):
            DesignSpace(np.array([8, 8, 16]), np.array([16, 32]))

    def test_default_space_values(self):
        space = default_space()
        assert space.pe_choices[0] == 8 and space.pe_choices[-1] == 512
        assert space.l2_choices[0] == 16 and space.l2_choices[-1] == 32768
