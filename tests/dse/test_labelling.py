"""Sharded dataset labelling: bit-identical to serial, cache-warming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import (ExhaustiveOracle, ShardedLabeller, label_inputs,
                       generate_random_dataset)


@pytest.fixture(scope="module")
def inputs(problem):
    return problem.sample_inputs(600, np.random.default_rng(13))


class TestShardedLabeller:
    def test_bit_identical_to_serial(self, problem, inputs):
        serial = ExhaustiveOracle(problem).solve(inputs)
        with ShardedLabeller(ExhaustiveOracle(problem), num_workers=2,
                             min_shard_size=32) as labeller:
            sharded = labeller.label(inputs)
        np.testing.assert_array_equal(sharded.pe_idx, serial.pe_idx)
        np.testing.assert_array_equal(sharded.l2_idx, serial.l2_idx)
        np.testing.assert_array_equal(sharded.best_cost, serial.best_cost)

    def test_warm_parent_cache(self, problem, inputs):
        oracle = ExhaustiveOracle(problem)
        with ShardedLabeller(oracle, num_workers=2,
                             min_shard_size=32) as labeller:
            labeller.label(inputs)
        # A follow-up serial solve is served entirely from the cache.
        before = oracle.cache_info()
        assert before.size > 0
        oracle.solve(inputs)
        after = oracle.cache_info()
        assert after.misses == before.misses

    def test_small_batch_skips_pool(self, problem):
        labeller = ShardedLabeller(ExhaustiveOracle(problem), num_workers=2,
                                   min_shard_size=256)
        small = problem.sample_inputs(10, np.random.default_rng(1))
        result = labeller.label(small)
        assert labeller._pool is None        # never spun up
        assert len(result.pe_idx) == 10
        labeller.close()

    def test_single_worker_is_serial(self, problem, inputs):
        labeller = ShardedLabeller(ExhaustiveOracle(problem), num_workers=1)
        result = labeller.label(inputs)
        assert labeller._pool is None
        assert len(result.pe_idx) == len(inputs)
        labeller.close()

    def test_shards_are_contiguous_and_bounded(self, problem, inputs):
        labeller = ShardedLabeller(ExhaustiveOracle(problem), num_workers=4,
                                   min_shard_size=16, max_shard_size=100)
        shards = labeller.shard(inputs)
        assert sum(len(rows) for _, rows in shards) == len(inputs)
        assert max(len(rows) for _, rows in shards) <= 100
        rebuilt = np.concatenate([rows for _, rows in shards])
        np.testing.assert_array_equal(rebuilt, inputs)
        labeller.close()

    def test_label_inputs_helper(self, problem, inputs):
        serial = label_inputs(ExhaustiveOracle(problem), inputs, num_workers=1)
        sharded = label_inputs(ExhaustiveOracle(problem), inputs,
                               num_workers=2)
        np.testing.assert_array_equal(sharded.pe_idx, serial.pe_idx)
        np.testing.assert_array_equal(sharded.best_cost, serial.best_cost)


class TestGeneratorsWithWorkers:
    def test_random_dataset_parallel_labels_identical(self, problem):
        serial = generate_random_dataset(problem, 600,
                                         np.random.default_rng(3))
        parallel = generate_random_dataset(problem, 600,
                                           np.random.default_rng(3),
                                           num_workers=2)
        np.testing.assert_array_equal(parallel.inputs, serial.inputs)
        np.testing.assert_array_equal(parallel.pe_idx, serial.pe_idx)
        np.testing.assert_array_equal(parallel.l2_idx, serial.l2_idx)
        np.testing.assert_array_equal(parallel.best_cost, serial.best_cost)
