"""Oracle LRU label cache: accounting, invalidation, and label identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import DSEProblem, ExhaustiveOracle


def _assert_same_labels(a, b):
    np.testing.assert_array_equal(a.pe_idx, b.pe_idx)
    np.testing.assert_array_equal(a.l2_idx, b.l2_idx)
    np.testing.assert_array_equal(a.best_cost, b.best_cost)


class TestHitMissAccounting:
    def test_cold_sweep_is_all_misses(self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        inputs = problem.sample_inputs(25, rng)
        inputs = np.unique(inputs, axis=0)
        oracle.solve(inputs)
        info = oracle.cache_info()
        assert info.misses == len(inputs)
        assert info.hits == 0
        assert info.size == len(inputs)
        assert info.hit_rate == 0.0

    def test_repeated_sweep_is_all_hits(self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        inputs = np.unique(problem.sample_inputs(25, rng), axis=0)
        oracle.solve(inputs)
        misses_after_cold = oracle.cache_info().misses
        oracle.solve(inputs)
        info = oracle.cache_info()
        assert info.hits == len(inputs)
        assert info.misses == misses_after_cold
        assert info.hit_rate == pytest.approx(0.5)

    def test_duplicate_rows_solved_once(self, problem):
        """lru_cache semantics: one miss per unique row, duplicates hit."""
        oracle = ExhaustiveOracle(problem)
        row = np.array([[64, 64, 64, 0]])
        oracle.solve(np.repeat(row, 5, axis=0))
        info = oracle.cache_info()
        assert info.size == 1
        assert info.misses == 1
        assert info.hits == 4

    def test_disabled_cache_never_counts(self, problem, rng):
        oracle = ExhaustiveOracle(problem, cache_size=0)
        inputs = problem.sample_inputs(10, rng)
        oracle.solve(inputs)
        oracle.solve(inputs)
        info = oracle.cache_info()
        assert info.hits == 0 and info.misses == 0 and info.size == 0

    def test_negative_cache_size_rejected(self, problem):
        with pytest.raises(ValueError):
            ExhaustiveOracle(problem, cache_size=-1)


class TestLabelIdentity:
    def test_cached_sweep_identical_to_cold(self, problem, rng):
        """A warm sweep must return exactly the cold-sweep labels."""
        inputs = problem.sample_inputs(40, rng)
        cached = ExhaustiveOracle(problem)
        cold = cached.solve(inputs)
        warm = cached.solve(inputs)
        _assert_same_labels(cold, warm)

    def test_cached_labels_match_uncached_oracle(self, problem, rng):
        inputs = problem.sample_inputs(40, rng)
        cached = ExhaustiveOracle(problem).solve(inputs)
        uncached = ExhaustiveOracle(problem, cache_size=0).solve(inputs)
        _assert_same_labels(cached, uncached)

    def test_keep_grid_bypasses_cache_read_but_agrees(self, problem, rng):
        """keep_grid always recomputes (grids are never cached), yet its
        labels agree with the cached path and traffic is still counted."""
        oracle = ExhaustiveOracle(problem)
        inputs = problem.sample_inputs(10, rng)
        cached = oracle.solve(inputs)
        info_before = oracle.cache_info()
        with_grid = oracle.solve(inputs, keep_grid=True)
        assert with_grid.cost_grid is not None
        info_after = oracle.cache_info()
        assert info_after.hits == info_before.hits + len(inputs)
        assert info_after.misses == info_before.misses
        _assert_same_labels(cached, with_grid)

    def test_keep_grid_warms_cache_for_label_traffic(self, problem, rng):
        """A grid-producing sweep records its labels, so subsequent
        label-only serving traffic over the same rows is all hits."""
        oracle = ExhaustiveOracle(problem)
        inputs = np.unique(problem.sample_inputs(40, rng), axis=0)
        gridded = oracle.solve(inputs, keep_grid=True)
        info = oracle.cache_info()
        assert info.misses == len(inputs)
        assert info.size == len(inputs)

        served = oracle.solve(inputs)
        info = oracle.cache_info()
        assert info.hits == len(inputs)
        assert info.misses == len(inputs)       # no new misses
        _assert_same_labels(gridded, served)

    def test_keep_grid_respects_capacity_and_disabled_cache(self, problem, rng):
        inputs = np.unique(problem.sample_inputs(30, rng), axis=0)[:12]
        bounded = ExhaustiveOracle(problem, cache_size=4)
        bounded.solve(inputs, keep_grid=True)
        assert bounded.cache_info().size == 4

        disabled = ExhaustiveOracle(problem, cache_size=0)
        result = disabled.solve(inputs, keep_grid=True)
        assert result.cost_grid is not None
        assert disabled.cache_info().size == 0
        assert disabled.cache_info().misses == 0

    def test_lru_evicts_oldest_but_stays_correct(self, problem, rng):
        oracle = ExhaustiveOracle(problem, cache_size=8)
        inputs = np.unique(problem.sample_inputs(30, rng), axis=0)[:12]
        first = oracle.solve(inputs)
        assert oracle.cache_info().size == 8
        again = oracle.solve(inputs)
        _assert_same_labels(first, again)

    def test_batch_larger_than_capacity(self, problem, rng):
        """A single sweep bigger than the cache still labels every row."""
        oracle = ExhaustiveOracle(problem, cache_size=4)
        inputs = problem.sample_inputs(20, rng)
        result = oracle.solve(inputs)
        reference = ExhaustiveOracle(problem, cache_size=0).solve(inputs)
        _assert_same_labels(result, reference)
        assert oracle.cache_info().size <= 4


class TestInvalidation:
    def test_problem_change_clears_cache(self, rng):
        latency = DSEProblem(metric="latency")
        oracle = ExhaustiveOracle(latency)
        inputs = latency.sample_inputs(15, rng)
        lat_result = oracle.solve(inputs)
        assert oracle.cache_info().size > 0

        oracle.problem = DSEProblem(metric="energy")
        assert oracle.cache_info().size == 0
        en_result = oracle.solve(inputs)
        # Energy labels genuinely differ -> stale entries would be wrong.
        assert ((lat_result.pe_idx != en_result.pe_idx).any()
                or (lat_result.l2_idx != en_result.l2_idx).any())

    def test_tolerance_change_clears_cache(self, problem, rng):
        oracle = ExhaustiveOracle(problem, tolerance=0.02)
        inputs = problem.sample_inputs(15, rng)
        oracle.solve(inputs)
        oracle.tolerance = 0.10
        assert oracle.cache_info().size == 0
        loose = oracle.solve(inputs)
        reference = ExhaustiveOracle(problem, tolerance=0.10,
                                     cache_size=0).solve(inputs)
        _assert_same_labels(loose, reference)

    def test_cost_model_change_clears_cache(self, problem, rng):
        from repro.maestro import CostModel
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(10, rng))
        assert oracle.cache_info().size > 0
        oracle.cost_model = CostModel()
        assert oracle.cache_info().size == 0

    def test_same_value_reassignment_keeps_cache(self, problem, rng):
        oracle = ExhaustiveOracle(problem, tolerance=0.02)
        oracle.solve(problem.sample_inputs(5, rng))
        size = oracle.cache_info().size
        oracle.tolerance = 0.02
        oracle.problem = problem
        assert oracle.cache_info().size == size

    def test_negative_tolerance_reassignment_rejected(self, problem):
        oracle = ExhaustiveOracle(problem)
        with pytest.raises(ValueError):
            oracle.tolerance = -0.5

    def test_cache_clear_resets_counters(self, problem, rng):
        oracle = ExhaustiveOracle(problem)
        inputs = problem.sample_inputs(10, rng)
        oracle.solve(inputs)
        oracle.solve(inputs)
        oracle.cache_clear()
        info = oracle.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)


class TestThreadSafety:
    def test_concurrent_solves_on_a_small_cache(self, problem):
        """Threaded HTTP handlers share one oracle: hammering a
        capacity-bound cache from many threads must neither crash
        (hit-classified keys evicted mid-solve) nor mislabel."""
        import threading

        oracle = ExhaustiveOracle(problem, cache_size=64)
        reference = ExhaustiveOracle(problem, cache_size=0)
        pools = [problem.sample_inputs(120, np.random.default_rng(s))
                 for s in range(4)]
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(15):
                    pool = pools[int(rng.integers(len(pools)))]
                    rows = pool[rng.integers(len(pool), size=20)]
                    got = oracle.solve(rows)
                    want = reference.solve(rows)
                    np.testing.assert_array_equal(got.pe_idx, want.pe_idx)
                    np.testing.assert_array_equal(got.l2_idx, want.l2_idx)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = oracle.cache_info()
        assert info.hits + info.misses == 8 * 15 * 20
        assert info.size <= 64
