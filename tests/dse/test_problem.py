"""DSE problem formulation: sampling, clamping, featurisation, tokenisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import DSEProblem, FeatureBounds


class TestSampling:
    def test_samples_within_bounds(self, problem, rng):
        inputs = problem.sample_inputs(500, rng)
        b = problem.bounds
        assert inputs.shape == (500, 4)
        assert inputs[:, 0].min() >= 1 and inputs[:, 0].max() <= b.m_max
        assert inputs[:, 1].min() >= 1 and inputs[:, 1].max() <= b.n_max
        assert inputs[:, 2].min() >= 1 and inputs[:, 2].max() <= b.k_max
        assert set(np.unique(inputs[:, 3])) <= {0, 1, 2}

    def test_log_uniform_favours_small_dims(self, problem, rng):
        logu = problem.sample_inputs(4000, rng, log_uniform=True)
        uni = problem.sample_inputs(4000, rng, log_uniform=False)
        assert np.median(logu[:, 1]) < np.median(uni[:, 1])

    def test_deterministic_under_seed(self, problem):
        a = problem.sample_inputs(50, np.random.default_rng(5))
        b = problem.sample_inputs(50, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_clamp(self, problem):
        m, n, k = problem.clamp_inputs(10 ** 6, 0, 500)
        assert int(m) == problem.bounds.m_max
        assert int(n) == 1
        assert int(k) == 500


class TestFeaturisation:
    def test_feature_shape_and_range(self, problem, rng):
        inputs = problem.sample_inputs(100, rng)
        feats = problem.featurize(inputs)
        assert feats.shape == (100, 6)
        assert (feats >= 0).all() and (feats <= 1).all()

    def test_onehot_dataflow(self, problem):
        feats = problem.featurize(np.array([[10, 10, 10, 1]]))
        np.testing.assert_array_equal(feats[0, 3:], [0, 1, 0])

    def test_max_dims_map_to_one(self, problem):
        b = problem.bounds
        feats = problem.featurize(np.array([[b.m_max, b.n_max, b.k_max, 0]]))
        np.testing.assert_allclose(feats[0, :3], 1.0)

    def test_tokenize_shape(self, problem, rng):
        inputs = problem.sample_inputs(7, rng)
        tokens = problem.tokenize(inputs)
        assert tokens.shape == (7, 4, 2)

    def test_token_type_channel(self, problem):
        tokens = problem.tokenize(np.array([[5, 5, 5, 2]]))
        np.testing.assert_allclose(tokens[0, :, 1], np.arange(4) / 3.0)

    def test_monotone_in_dimension(self, problem):
        small = problem.featurize(np.array([[2, 10, 10, 0]]))
        large = problem.featurize(np.array([[200, 10, 10, 0]]))
        assert large[0, 0] > small[0, 0]


class TestMetric:
    def test_metric_validation(self):
        with pytest.raises(ValueError):
            DSEProblem(metric="throughput")

    def test_metric_array_selects(self, problem):
        from repro.maestro import CostModel
        out = CostModel().evaluate(8, 8, 8, "os", 64, 256)
        assert DSEProblem(metric="latency").metric_array(out) is \
            out.latency_cycles
        assert DSEProblem(metric="energy").metric_array(out) is out.energy_pj
        np.testing.assert_allclose(DSEProblem(metric="edp").metric_array(out),
                                   out.edp)

    def test_bounds_defaults_match_table1(self):
        b = FeatureBounds()
        assert (b.m_max, b.n_max, b.k_max, b.n_dataflows) == (256, 1677, 1185, 3)
