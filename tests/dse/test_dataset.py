"""Dataset generation, persistence, splits, training targets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse import (DSEDataset, generate_random_dataset,
                       generate_workload_dataset)


class TestGeneration:
    def test_random_dataset_fields(self, problem, small_dataset):
        ds = small_dataset
        assert len(ds) == 600
        assert ds.inputs.shape == (600, 4)
        assert (ds.pe_idx >= 0).all() and (ds.pe_idx < 64).all()
        assert (ds.l2_idx >= 0).all() and (ds.l2_idx < 12).all()
        assert (ds.best_cost > 0).all()

    def test_workload_dataset_covers_dataflows(self, problem, rng):
        layers = np.array([[64, 128, 96], [32, 64, 48]])
        ds = generate_workload_dataset(problem, layers, rng)
        assert len(ds) == 6  # 2 layers x 3 dataflows
        assert set(np.unique(ds.inputs[:, 3])) == {0, 1, 2}

    def test_workload_dataset_augmentation(self, problem, rng):
        layers = np.array([[64, 128, 96]])
        ds = generate_workload_dataset(problem, layers, rng, target_count=50)
        assert len(ds) == 50
        b = problem.bounds
        assert ds.inputs[:, 0].max() <= b.m_max
        assert ds.inputs[:, 1].max() <= b.n_max

    def test_layer_clamping(self, problem, rng):
        layers = np.array([[10 ** 6, 10 ** 6, 10 ** 6]])
        ds = generate_workload_dataset(problem, layers, rng)
        b = problem.bounds
        assert ds.inputs[:, 0].max() == b.m_max
        assert ds.inputs[:, 1].max() == b.n_max
        assert ds.inputs[:, 2].max() == b.k_max

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DSEDataset(np.zeros((3, 4), dtype=np.int64), np.zeros(2),
                       np.zeros(3), np.zeros(3))


class TestTargetsAndLabels:
    def test_perf_targets_zscored(self, small_dataset):
        perf, mean, std = small_dataset.perf_targets()
        assert abs(perf.mean()) < 1e-9
        assert perf.std() == pytest.approx(1.0, abs=1e-6)

    def test_perf_targets_with_frozen_stats(self, small_dataset):
        _, mean, std = small_dataset.perf_targets()
        perf2, m2, s2 = small_dataset.perf_targets(mean=mean, std=std)
        assert (m2, s2) == (mean, std)

    def test_joint_labels_range(self, problem, small_dataset):
        labels = small_dataset.joint_labels(problem.space.n_l2)
        assert labels.min() >= 0 and labels.max() < problem.space.size

    def test_joint_labels_invertible(self, problem, small_dataset):
        labels = small_dataset.joint_labels(problem.space.n_l2)
        pe, l2 = problem.space.unflatten(labels)
        np.testing.assert_array_equal(pe, small_dataset.pe_idx)
        np.testing.assert_array_equal(l2, small_dataset.l2_idx)


class TestSplitAndPersistence:
    def test_split_sizes(self, small_dataset, rng):
        train, test = small_dataset.split(0.25, rng)
        assert len(test) == 150 and len(train) == 450

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2, 1.5])
    def test_degenerate_fraction_rejected(self, small_dataset, rng, fraction):
        with pytest.raises(ValueError, match="test_fraction"):
            small_dataset.split(fraction, rng)

    def test_too_small_dataset_rejected(self, small_dataset, rng):
        single = small_dataset.subset(np.array([0]))
        with pytest.raises(ValueError, match="non-empty"):
            single.split(0.5, rng)

    def test_both_splits_nonempty_at_extreme_fraction(self, small_dataset,
                                                      rng):
        train, test = small_dataset.split(0.999, rng)
        assert len(train) >= 1 and len(test) >= 1
        assert len(train) + len(test) == len(small_dataset)

    def test_split_disjoint(self, small_dataset, rng):
        train, test = small_dataset.split(0.5, rng)
        train_rows = {tuple(r) + (c,) for r, c in
                      zip(train.inputs, train.best_cost)}
        test_rows = {tuple(r) + (c,) for r, c in
                     zip(test.inputs, test.best_cost)}
        assert len(train_rows | test_rows) >= len(small_dataset) * 0.95

    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        small_dataset.save(path)
        loaded = DSEDataset.load(path)
        np.testing.assert_array_equal(loaded.inputs, small_dataset.inputs)
        np.testing.assert_array_equal(loaded.pe_idx, small_dataset.pe_idx)
        np.testing.assert_allclose(loaded.best_cost, small_dataset.best_cost)

    def test_subset(self, small_dataset):
        sub = small_dataset.subset(np.array([3, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.inputs, small_dataset.inputs[[3, 5, 7]])


class TestDatasetCharacteristics:
    """The dataset-level phenomena the paper builds on (Fig. 3)."""

    def test_long_tailed_labels(self, problem, small_dataset):
        from repro.analysis import longtail_stats
        labels = small_dataset.joint_labels(problem.space.n_l2)
        stats = longtail_stats(labels, problem.space.size)
        # A small head of classes dominates...
        assert stats.head_share_top5 > 0.15
        # ...while many classes are still in use.
        assert stats.num_classes_used > 30
        assert stats.gini > 0.5

    def test_labels_depend_on_dataflow(self, problem, oracle):
        inputs = np.array([[128, 900, 600, df] for df in range(3)])
        result = oracle.solve(inputs)
        labels = result.pe_idx * problem.space.n_l2 + result.l2_idx
        assert len(set(labels.tolist())) >= 2
