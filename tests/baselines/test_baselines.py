"""Learning-based baselines: v1 MLP, GANDSE, VAESA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (GANDSE, GANDSEConfig, AirchitectV1, V1Config,
                             VAESA, VAESAConfig, train_gandse, train_v1,
                             train_vaesa)
from repro.dse import generate_random_dataset


@pytest.fixture(scope="module")
def train_data(problem):
    return generate_random_dataset(problem, 400, np.random.default_rng(31))


class TestAirchitectV1:
    def test_joint_head_size(self, problem, rng):
        model = AirchitectV1(V1Config(), problem, rng)
        pe, l2 = model.forward(problem.sample_inputs(5, rng))
        assert pe.shape == (5, 768) and l2 is None

    def test_uov_heads(self, problem, rng):
        model = AirchitectV1(V1Config(head_style="uov", num_buckets=8),
                             problem, rng)
        pe, l2 = model.forward(problem.sample_inputs(5, rng))
        assert pe.shape == (5, 8) and l2.shape == (5, 8)

    def test_invalid_head_style(self):
        with pytest.raises(ValueError):
            V1Config(head_style="multi")

    def test_training_loss_decreases(self, problem, train_data):
        model = AirchitectV1(V1Config(epochs=5), problem,
                             np.random.default_rng(0))
        history = train_v1(model, train_data)
        assert history["loss"][-1] < history["loss"][0]

    def test_uov_variant_trains(self, problem, train_data):
        model = AirchitectV1(V1Config(epochs=3, head_style="uov"), problem,
                             np.random.default_rng(0))
        history = train_v1(model, train_data)
        assert np.isfinite(history["loss"]).all()

    def test_predictions_in_range(self, problem, train_data):
        model = AirchitectV1(V1Config(epochs=2), problem,
                             np.random.default_rng(0))
        train_v1(model, train_data)
        pe, l2 = model.predict_indices(train_data.inputs)
        assert (pe >= 0).all() and (pe < 64).all()
        assert (l2 >= 0).all() and (l2 < 12).all()

    def test_uov_head_much_smaller_than_joint(self, problem, rng):
        joint = AirchitectV1(V1Config(), problem, rng)
        uov = AirchitectV1(V1Config(head_style="uov"), problem, rng)
        assert uov.head_parameter_count() * 5 < joint.head_parameter_count()

    def test_learns_better_than_random(self, problem, train_data):
        from repro.core import evaluate_predictions
        model = AirchitectV1(V1Config(epochs=15), problem,
                             np.random.default_rng(0))
        train_v1(model, train_data)
        pe, l2 = model.predict_indices(train_data.inputs)
        metrics = evaluate_predictions(problem, train_data, pe, l2,
                                       compute_regret=False)
        assert metrics.accuracy > 0.05


class TestGANDSE:
    def test_generator_output_in_unit_box(self, problem, rng):
        model = GANDSE(GANDSEConfig(), problem, rng)
        from repro import nn
        feats = nn.Tensor(problem.featurize(problem.sample_inputs(6, rng)))
        noise = nn.Tensor(rng.normal(size=(6, model.config.noise_dim)))
        out = model.generator(feats, noise).numpy()
        assert (out >= 0).all() and (out <= 1).all()

    def test_adversarial_training_runs(self, problem, train_data):
        model = GANDSE(GANDSEConfig(epochs=3), problem,
                       np.random.default_rng(0))
        history = train_gandse(model, train_data)
        assert len(history["g_loss"]) == 3
        assert np.isfinite(history["g_loss"]).all()
        assert np.isfinite(history["d_loss"]).all()

    def test_predictions_in_range(self, problem, train_data):
        model = GANDSE(GANDSEConfig(epochs=2), problem,
                       np.random.default_rng(0))
        train_gandse(model, train_data)
        pe, l2 = model.predict_indices(train_data.inputs[:50])
        assert (pe >= 0).all() and (pe < 64).all()
        assert (l2 >= 0).all() and (l2 < 12).all()

    def test_discriminator_separates_real_fake_early(self, problem,
                                                     train_data):
        """After training, D should score dataset-optimal designs above
        random designs on average."""
        rng = np.random.default_rng(0)
        model = GANDSE(GANDSEConfig(epochs=8), problem, rng)
        train_gandse(model, train_data)
        from repro import nn
        feats = nn.Tensor(problem.featurize(train_data.inputs[:100]))
        real = model.normalise_labels(train_data)[:100]
        fake = rng.random((100, 2))
        with nn.no_grad():
            d_real = model.discriminator(feats, nn.Tensor(real)).numpy()
            d_fake = model.discriminator(feats, nn.Tensor(fake)).numpy()
        assert d_real.mean() > d_fake.mean()


class TestVAESA:
    def test_training_reduces_reconstruction(self, problem, train_data):
        model = VAESA(VAESAConfig(epochs=6), problem, np.random.default_rng(0))
        history = train_vaesa(model, train_data)
        assert history["recon"][-1] < history["recon"][0]

    def test_decode_to_indices_shape(self, problem, train_data, rng):
        model = VAESA(VAESAConfig(epochs=1), problem, np.random.default_rng(0))
        train_vaesa(model, train_data)
        z = rng.normal(size=(5, model.config.latent_dim))
        pe, l2 = model.decode_to_indices(z)
        assert pe.shape == (5,) and l2.shape == (5,)
        assert (pe >= 0).all() and (pe < 64).all()

    def test_search_improves_over_first_sample(self, problem, train_data,
                                               oracle):
        from repro.search.bo import BOConfig
        model = VAESA(VAESAConfig(epochs=4), problem, np.random.default_rng(0))
        train_vaesa(model, train_data)
        rng = np.random.default_rng(7)
        pe, l2, result = model.search(train_data.inputs[0], rng,
                                      BOConfig(init_points=4, iterations=8),
                                      oracle=oracle)
        assert result.history[-1] <= result.history[0]
        assert 0 <= pe < 64 and 0 <= l2 < 12

    def test_latent_reconstruction_of_known_designs(self, problem, train_data):
        """Encoding then decoding a dataset design should approximately
        recover it (the 'reconstructible latent space' property of [11])."""
        from repro import nn
        model = VAESA(VAESAConfig(epochs=30), problem,
                      np.random.default_rng(0))
        train_vaesa(model, train_data)
        space = problem.space
        designs = np.stack([train_data.pe_idx / (space.n_pe - 1),
                            train_data.l2_idx / (space.n_l2 - 1)], axis=1)
        with nn.no_grad():
            mu, _ = model.encode(nn.Tensor(designs))
            recon = model.decode(mu).numpy()
        err = np.abs(recon - designs).mean()
        assert err < 0.2

    def test_latent_space_covers_design_diversity(self, problem, train_data,
                                                  rng):
        """Sampling the latent prior must decode to *many* distinct designs
        (no posterior collapse), or BO search would be pointless."""
        model = VAESA(VAESAConfig(epochs=10), problem,
                      np.random.default_rng(0))
        train_vaesa(model, train_data)
        z = rng.normal(size=(256, model.config.latent_dim))
        pe, l2 = model.decode_to_indices(z)
        distinct = len(set(zip(pe.tolist(), l2.tolist())))
        assert distinct >= 10
