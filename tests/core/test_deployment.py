"""Deployment methods 1 and 2 (§III-E): optimality and consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DeploymentEvaluator
from repro.workloads import build_workload, lenet5


@pytest.fixture(scope="module")
def evaluator(problem):
    return DeploymentEvaluator(problem)


@pytest.fixture(scope="module")
def workload():
    return build_workload("resnet50_224")


class TestModelLatency:
    def test_positive_latency(self, evaluator, workload):
        assert evaluator.model_latency(workload, 64, 256) > 0

    def test_count_weighting(self, evaluator, problem):
        """Doubling a layer's multiplicity doubles its contribution."""
        from repro.maestro import GemmWorkload
        from repro.workloads import ModelWorkload
        single = ModelWorkload("one", (GemmWorkload(64, 64, 64),), (1,))
        double = ModelWorkload("two", (GemmWorkload(64, 64, 64),), (2,))
        l1 = evaluator.model_latency(single, 64, 256)
        l2 = evaluator.model_latency(double, 64, 256)
        assert l2 == pytest.approx(2 * l1)

    def test_flexible_dataflow_no_worse_than_fixed(self, problem, workload):
        flexible = DeploymentEvaluator(problem, dataflow=None)
        fixed = DeploymentEvaluator(problem, dataflow="ws")
        assert flexible.model_latency(workload, 64, 256) <= \
            fixed.model_latency(workload, 64, 256) + 1e-9

    def test_layer_inputs_clamped(self, evaluator, workload, problem):
        tuples = evaluator.layer_inputs(workload)
        b = problem.bounds
        assert tuples[:, 0].max() <= b.m_max
        assert tuples[:, 1].max() <= b.n_max
        assert tuples[:, 2].max() <= b.k_max


class TestMethod1:
    def test_picks_minimum_over_candidates(self, evaluator, workload):
        pe = np.array([0, 20, 40])
        l2 = np.array([0, 5, 9])
        result = evaluator.method1(workload, pe, l2)
        for p, l in zip(pe, l2):
            pes = int(evaluator.problem.space.pe_choices[p])
            l2kb = int(evaluator.problem.space.l2_choices[l])
            assert result.total_latency <= \
                evaluator.model_latency(workload, pes, l2kb) + 1e-9

    def test_result_config_among_candidates(self, evaluator, workload):
        pe = np.array([3, 17])
        l2 = np.array([2, 8])
        result = evaluator.method1(workload, pe, l2)
        assert (result.pe_idx, result.l2_idx) in {(3, 2), (17, 8)}

    def test_duplicate_candidates_deduped(self, evaluator, workload):
        pe = np.array([10] * 5)
        l2 = np.array([4] * 5)
        result = evaluator.method1(workload, pe, l2)
        assert (result.pe_idx, result.l2_idx) == (10, 4)


class TestMethod2:
    def test_bottleneck_config_adopted(self, evaluator, workload):
        n = workload.num_unique_layers
        pe = np.arange(n) % 64
        l2 = np.arange(n) % 12
        result = evaluator.method2(workload, pe, l2)
        assert (result.pe_idx, result.l2_idx) in set(zip(pe.tolist(),
                                                         l2.tolist()))

    def test_method1_no_worse_than_method2(self, evaluator, workload, rng):
        """Method 1 optimises the model-level objective directly, so it can
        never lose to Method 2 on the same candidate set."""
        n = workload.num_unique_layers
        pe = rng.integers(0, 64, n)
        l2 = rng.integers(0, 12, n)
        m1 = evaluator.method1(workload, pe, l2)
        m2 = evaluator.method2(workload, pe, l2)
        assert m1.total_latency <= m2.total_latency + 1e-9


class TestOracleDeployment:
    def test_oracle_beats_any_candidate_selection(self, evaluator, rng):
        workload = lenet5()
        oracle = evaluator.oracle_deployment(workload)
        n = workload.num_unique_layers
        for _ in range(3):
            pe = rng.integers(0, 64, n)
            l2 = rng.integers(0, 12, n)
            m1 = evaluator.method1(workload, pe, l2)
            assert oracle.total_latency <= m1.total_latency + 1e-9

    def test_oracle_result_fields(self, evaluator):
        workload = lenet5()
        result = evaluator.oracle_deployment(workload)
        assert result.num_pes in evaluator.problem.space.pe_choices
        assert result.l2_kb in evaluator.problem.space.l2_choices
        assert len(result.per_layer_latency) == workload.num_unique_layers
