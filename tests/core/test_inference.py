"""Prediction metrics and the user-facing predictor API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (AirchitectV2, DSEPredictor, ModelConfig,
                        evaluate_predictions)


class TestMetricsMaths:
    def test_perfect_predictions(self, problem, small_dataset, oracle):
        metrics = evaluate_predictions(problem, small_dataset,
                                       small_dataset.pe_idx,
                                       small_dataset.l2_idx, oracle=oracle)
        assert metrics.accuracy == 1.0
        assert metrics.pe_accuracy == 1.0
        assert metrics.l2_accuracy == 1.0
        assert metrics.mean_regret == pytest.approx(0.0, abs=1e-9)

    def test_all_wrong_predictions(self, problem, small_dataset, oracle):
        wrong_pe = (small_dataset.pe_idx + 7) % 64
        wrong_l2 = (small_dataset.l2_idx + 5) % 12
        metrics = evaluate_predictions(problem, small_dataset, wrong_pe,
                                       wrong_l2, oracle=oracle)
        assert metrics.accuracy == 0.0
        assert metrics.mean_regret > 0.0

    def test_partial_accuracy(self, problem, small_dataset, oracle):
        pe = small_dataset.pe_idx.copy()
        pe[:len(pe) // 2] = (pe[:len(pe) // 2] + 9) % 64
        metrics = evaluate_predictions(problem, small_dataset, pe,
                                       small_dataset.l2_idx, oracle=oracle,
                                       compute_regret=False)
        assert metrics.accuracy == pytest.approx(0.5, abs=0.01)
        assert metrics.l2_accuracy == 1.0

    def test_bucket_accuracy_gte_exact(self, problem, small_dataset, oracle,
                                       rng):
        from repro.uov import UOVCodec
        pe_codec = UOVCodec(64, 16)
        l2_codec = UOVCodec(12, 16)
        noisy_pe = np.clip(small_dataset.pe_idx
                           + rng.integers(-2, 3, len(small_dataset)), 0, 63)
        metrics = evaluate_predictions(problem, small_dataset, noisy_pe,
                                       small_dataset.l2_idx,
                                       pe_codec=pe_codec, l2_codec=l2_codec,
                                       oracle=oracle, compute_regret=False)
        assert metrics.bucket_accuracy >= metrics.accuracy

    def test_regret_nonnegative_for_strict_oracle(self, problem, rng):
        """With tolerance 0, no prediction can beat the oracle optimum."""
        from repro.dse import ExhaustiveOracle, generate_random_dataset
        strict = ExhaustiveOracle(problem, tolerance=0.0)
        data = generate_random_dataset(problem, 100, rng, oracle=strict)
        rand_pe = rng.integers(0, 64, 100)
        rand_l2 = rng.integers(0, 12, 100)
        metrics = evaluate_predictions(problem, data, rand_pe, rand_l2,
                                       oracle=strict)
        assert metrics.mean_regret >= -1e-9

    def test_as_dict_keys(self, problem, small_dataset, oracle):
        metrics = evaluate_predictions(problem, small_dataset,
                                       small_dataset.pe_idx,
                                       small_dataset.l2_idx, oracle=oracle,
                                       compute_regret=False)
        assert set(metrics.as_dict()) == {"accuracy", "pe_accuracy",
                                          "l2_accuracy", "bucket_accuracy",
                                          "mean_regret"}


class TestPredictorAPI:
    def test_predict_returns_physical_values(self, problem, rng):
        config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8)
        model = AirchitectV2(config, problem, rng)
        predictor = DSEPredictor(model)
        pes, l2 = predictor.predict(64, 512, 256, 0)
        assert pes[0] in problem.space.pe_choices
        assert l2[0] in problem.space.l2_choices

    def test_predict_clamps_out_of_range_workloads(self, problem, rng):
        config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8)
        model = AirchitectV2(config, problem, rng)
        predictor = DSEPredictor(model)
        pes, l2 = predictor.predict(10 ** 9, 10 ** 9, 10 ** 9, 2)
        assert len(pes) == 1  # no crash, feature clamped

    def test_predict_vectorised(self, problem, rng):
        config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8)
        model = AirchitectV2(config, problem, rng)
        predictor = DSEPredictor(model)
        m = np.array([8, 16, 32])
        pes, l2 = predictor.predict(m, m * 2, m * 3, np.array([0, 1, 2]))
        assert pes.shape == (3,)
