"""Stage-1 and stage-2 training: losses fall, freezing works, ablation flags."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (AirchitectV2, ModelConfig, Stage1Config, Stage1Trainer,
                        Stage2Config, Stage2Trainer, contrastive_labels)
from repro.dse import generate_random_dataset


@pytest.fixture(scope="module")
def train_data(problem):
    return generate_random_dataset(problem, 400, np.random.default_rng(21))


def _model(problem, seed=0, **overrides):
    config = dict(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                  head_hidden=16, num_buckets=8)
    config.update(overrides)
    return AirchitectV2(ModelConfig(**config), problem,
                        np.random.default_rng(seed))


class TestStage1:
    def test_loss_decreases(self, problem, train_data):
        model = _model(problem)
        history = Stage1Trainer(model, Stage1Config(epochs=6)).train(train_data)
        assert history["loss"][-1] < history["loss"][0]

    def test_contrastive_labels_shape_and_range(self, problem, train_data):
        model = _model(problem)
        labels = contrastive_labels(model, train_data)
        assert labels.shape == (len(train_data),)
        assert labels.max() < model.pe_codec.num_buckets * \
            model.l2_codec.num_buckets

    def test_decoder_untouched_by_stage1(self, problem, train_data):
        model = _model(problem)
        before = {k: v.copy() for k, v in model.decoder.state_dict().items()}
        Stage1Trainer(model, Stage1Config(epochs=2)).train(train_data)
        after = model.decoder.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_encoder_changes_in_stage1(self, problem, train_data):
        model = _model(problem)
        before = {k: v.copy() for k, v in model.encoder.state_dict().items()}
        Stage1Trainer(model, Stage1Config(epochs=2)).train(train_data)
        changed = any(not np.array_equal(before[k], v)
                      for k, v in model.encoder.state_dict().items())
        assert changed

    @pytest.mark.parametrize("use_c,use_p", [(False, False), (True, False),
                                             (False, True), (True, True)])
    def test_all_ablation_variants_train(self, problem, train_data, use_c,
                                         use_p):
        model = _model(problem)
        config = Stage1Config(epochs=2, use_contrastive=use_c, use_perf=use_p)
        history = Stage1Trainer(model, config).train(train_data)
        assert np.isfinite(history["loss"]).all()

    def test_contrastive_improves_separation(self, problem, train_data):
        """Stage-1 with L_C must separate bucket classes better than the
        perf-only encoder (the Fig. 5 claim, unit-sized)."""
        from repro.analysis import embedding_stats
        from repro.nn import no_grad

        scores = {}
        for use_c in (True, False):
            model = _model(problem, seed=3)
            Stage1Trainer(model, Stage1Config(
                epochs=8, use_contrastive=use_c)).train(train_data)
            labels = contrastive_labels(model, train_data)
            with no_grad():
                z = model.embed(train_data.inputs).numpy()
            scores[use_c] = embedding_stats(z, labels).separation
        assert scores[True] > scores[False]


class TestStage2:
    def test_loss_decreases(self, problem, train_data):
        model = _model(problem)
        Stage1Trainer(model, Stage1Config(epochs=2)).train(train_data)
        history = Stage2Trainer(model, Stage2Config(epochs=6)).train(train_data)
        assert history["loss"][-1] < history["loss"][0]

    def test_encoder_frozen_during_stage2(self, problem, train_data):
        """§III-D: encoder weights fixed to prevent gradient backprop."""
        model = _model(problem)
        Stage1Trainer(model, Stage1Config(epochs=1)).train(train_data)
        before = {k: v.copy() for k, v in model.encoder.state_dict().items()}
        Stage2Trainer(model, Stage2Config(epochs=3)).train(train_data)
        for key, value in model.encoder.state_dict().items():
            np.testing.assert_array_equal(before[key], value)

    def test_encoder_unfrozen_after_stage2(self, problem, train_data):
        model = _model(problem)
        Stage2Trainer(model, Stage2Config(epochs=1)).train(train_data)
        assert all(p.requires_grad for p in model.encoder.parameters())

    @pytest.mark.parametrize("style", ["uov", "classification", "joint",
                                       "regression"])
    def test_all_head_styles_train(self, problem, train_data, style):
        model = _model(problem, head_style=style)
        history = Stage2Trainer(model, Stage2Config(epochs=2)).train(train_data)
        assert np.isfinite(history["loss"]).all()

    def test_training_improves_over_random(self, problem, train_data):
        """After both stages, accuracy must beat random guessing."""
        from repro.core import evaluate_model
        model = _model(problem, d_model=24, embed_dim=12)
        Stage1Trainer(model, Stage1Config(epochs=8)).train(train_data)
        Stage2Trainer(model, Stage2Config(epochs=8)).train(train_data)
        metrics = evaluate_model(model, train_data, compute_regret=False)
        assert metrics.accuracy > 2.0 / 768  # >> random over the label space
        assert metrics.l2_accuracy > 1.5 / 12
