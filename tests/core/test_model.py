"""AIRCHITECT v2 model: architecture shapes, head styles, prediction APIs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AirchitectV2, ModelConfig


def _tiny_config(**overrides):
    base = dict(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                head_hidden=16, num_buckets=8)
    base.update(overrides)
    return ModelConfig(**base)


@pytest.fixture
def inputs(problem, rng):
    return problem.sample_inputs(10, rng)


class TestArchitecture:
    def test_embedding_shape(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(), problem, rng)
        z = model.embed(inputs)
        assert z.shape == (10, 8)

    def test_forward_returns_all_outputs(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(), problem, rng)
        z, perf, (pe, l2) = model(inputs)
        assert z.shape == (10, 8)
        assert perf.shape == (10,)
        assert pe.shape == (10, 8) and l2.shape == (10, 8)

    def test_uov_heads_sized_by_buckets(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(num_buckets=6), problem, rng)
        _, _, (pe, l2) = model(inputs)
        assert pe.shape[-1] == 6 and l2.shape[-1] == 6

    def test_classification_heads_sized_by_choices(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(head_style="classification"),
                             problem, rng)
        _, _, (pe, l2) = model(inputs)
        assert pe.shape[-1] == 64 and l2.shape[-1] == 12

    def test_joint_head_covers_product_space(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(head_style="joint"), problem, rng)
        _, _, (pe, l2) = model(inputs)
        assert pe.shape[-1] == 768 and l2 is None

    def test_regression_heads_scalar(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(head_style="regression"),
                             problem, rng)
        _, _, (pe, l2) = model(inputs)
        assert pe.shape[-1] == 1 and l2.shape[-1] == 1

    def test_invalid_head_style(self):
        with pytest.raises(ValueError):
            ModelConfig(head_style="linear-probe")

    def test_uov_head_smaller_than_classification(self, problem, rng):
        uov = AirchitectV2(_tiny_config(num_buckets=16), problem, rng)
        cls = AirchitectV2(_tiny_config(head_style="classification"),
                           problem, rng)
        assert uov.head_parameter_count() < cls.head_parameter_count()


class TestPrediction:
    @pytest.mark.parametrize("style", ["uov", "classification", "joint",
                                       "regression"])
    def test_predict_indices_in_range(self, problem, rng, inputs, style):
        model = AirchitectV2(_tiny_config(head_style=style), problem, rng)
        pe, l2 = model.predict_indices(inputs)
        assert pe.shape == (10,) and l2.shape == (10,)
        assert (pe >= 0).all() and (pe < 64).all()
        assert (l2 >= 0).all() and (l2 < 12).all()

    def test_prediction_deterministic_in_eval(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(), problem, rng)
        a = model.predict_indices(inputs)
        b = model.predict_indices(inputs)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_predict_batching_consistent(self, problem, rng):
        model = AirchitectV2(_tiny_config(), problem, rng)
        inputs = problem.sample_inputs(30, rng)
        full = model.predict_indices(inputs, batch_size=30)
        chunked = model.predict_indices(inputs, batch_size=7)
        np.testing.assert_array_equal(full[0], chunked[0])

    def test_gradient_reaches_encoder_and_decoder(self, problem, rng, inputs):
        model = AirchitectV2(_tiny_config(), problem, rng)
        _, perf, (pe, l2) = model(inputs)
        ((pe ** 2).sum() + (l2 ** 2).sum() + (perf ** 2).sum()).backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert np.mean(grads) > 0.9

    def test_state_dict_roundtrip_preserves_predictions(self, problem, rng,
                                                        inputs):
        m1 = AirchitectV2(_tiny_config(), problem, rng)
        m2 = AirchitectV2(_tiny_config(), problem, np.random.default_rng(4))
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m1.predict_indices(inputs)[0],
                                      m2.predict_indices(inputs)[0])
