"""Batched serving engine: parity with the per-sample predictor.

The engine's contract is *bitwise-identical predictions* to the
per-sample :class:`DSEPredictor` — only throughput may differ.  Parity is
checked across random model seeds, head styles, and micro-batch sizes
(1, 7, 64, full-dataset).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (AirchitectV2, BatchedDSEPredictor, DSEPredictor,
                        ModelConfig, evaluate_model)

MICRO_BATCH_SIZES = (1, 7, 64, None)     # None -> full-dataset batches


def _model(problem, seed: int, head_style: str = "uov") -> AirchitectV2:
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                         head_style=head_style)
    return AirchitectV2(config, problem, np.random.default_rng(seed))


class TestParityWithPerSamplePredictor:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_identical_to_per_sample_loop(self, problem, small_dataset, seed):
        """Engine output == DSEPredictor called one row at a time."""
        model = _model(problem, seed)
        engine = BatchedDSEPredictor(model, micro_batch_size=64)
        loop = DSEPredictor(model)
        inputs = small_dataset.inputs[:96]

        pe_b, l2_b = engine.predict_indices(inputs)
        parts = [loop.predict_indices(row) for row in inputs]
        np.testing.assert_array_equal(pe_b, np.concatenate([p for p, _ in parts]))
        np.testing.assert_array_equal(l2_b, np.concatenate([l for _, l in parts]))

    @pytest.mark.parametrize("micro_batch", MICRO_BATCH_SIZES)
    @pytest.mark.parametrize("seed", [0, 42])
    def test_micro_batch_size_invariance(self, problem, small_dataset, seed,
                                         micro_batch):
        """Predictions do not depend on the micro-batch size."""
        model = _model(problem, seed)
        inputs = small_dataset.inputs
        size = len(inputs) if micro_batch is None else micro_batch
        engine = BatchedDSEPredictor(model, micro_batch_size=size)
        reference = model.predict_indices(inputs)

        pe, l2 = engine.predict_indices(inputs)
        np.testing.assert_array_equal(pe, reference[0])
        np.testing.assert_array_equal(l2, reference[1])

    @pytest.mark.parametrize("head_style", ["uov", "classification", "joint",
                                            "regression"])
    def test_parity_across_head_styles(self, problem, small_dataset,
                                       head_style):
        """decode_logits is shared, so every head style stays in parity."""
        model = _model(problem, 3, head_style=head_style)
        engine = BatchedDSEPredictor(model, micro_batch_size=17)
        inputs = small_dataset.inputs[:64]

        pe, l2 = engine.predict_indices(inputs)
        reference = model.predict_indices(inputs)
        np.testing.assert_array_equal(pe, reference[0])
        np.testing.assert_array_equal(l2, reference[1])

    def test_predict_matches_simple_predictor(self, problem):
        model = _model(problem, 11)
        engine = BatchedDSEPredictor(model)
        simple = DSEPredictor(model)
        m = np.array([8, 64, 200])
        args = (m, m * 3, m * 2, np.array([0, 1, 2]))
        np.testing.assert_array_equal(engine.predict(*args)[0],
                                      simple.predict(*args)[0])
        np.testing.assert_array_equal(engine.predict(*args)[1],
                                      simple.predict(*args)[1])


class TestSweepAPI:
    def test_sweep_shapes_and_throughput(self, problem, small_dataset):
        engine = BatchedDSEPredictor(_model(problem, 5), micro_batch_size=128)
        result = engine.sweep(small_dataset.inputs[:100])
        assert len(result) == 100
        assert result.num_pes.shape == (100,)
        assert np.isin(result.num_pes, problem.space.pe_choices).all()
        assert np.isin(result.l2_kb, problem.space.l2_choices).all()
        assert result.predicted_cost is None
        assert result.samples_per_sec > 0

    def test_sweep_with_cost_matches_oracle_cost_at(self, problem,
                                                    small_dataset, oracle):
        engine = BatchedDSEPredictor(_model(problem, 5))
        inputs = small_dataset.inputs[:50]
        result = engine.sweep(inputs, with_cost=True, oracle=oracle)
        expected = oracle.cost_at(inputs, result.pe_idx, result.l2_idx)
        np.testing.assert_allclose(result.predicted_cost, expected, rtol=1e-12)

    def test_invalid_micro_batch_rejected(self, problem):
        with pytest.raises(ValueError):
            BatchedDSEPredictor(_model(problem, 0), micro_batch_size=0)

    def test_elapsed_includes_cost_phase(self, problem, small_dataset,
                                         oracle):
        """elapsed_s covers predict + oracle cost; predict_elapsed_s is
        the forward-pass share only."""
        engine = BatchedDSEPredictor(_model(problem, 5))
        inputs = small_dataset.inputs[:80]
        oracle.cache_clear()
        result = engine.sweep(inputs, with_cost=True, oracle=oracle)
        assert result.elapsed_s > result.predict_elapsed_s > 0
        assert result.samples_per_sec == pytest.approx(
            len(inputs) / result.elapsed_s, rel=1e-6)

        without = engine.sweep(inputs)
        assert without.elapsed_s >= without.predict_elapsed_s > 0


class TestOnBatchHook:
    def test_hook_sees_every_micro_batch(self, problem, small_dataset):
        calls: list[tuple[int, float]] = []
        engine = BatchedDSEPredictor(
            _model(problem, 5), micro_batch_size=64,
            on_batch=lambda rows, s: calls.append((rows, s)))
        inputs = small_dataset.inputs[:150]
        engine.predict_indices(inputs)
        assert [rows for rows, _ in calls] == [64, 64, 22]
        assert all(elapsed >= 0 for _, elapsed in calls)

    def test_hooked_engine_predictions_unchanged(self, problem,
                                                 small_dataset):
        model = _model(problem, 8)
        inputs = small_dataset.inputs[:100]
        plain = BatchedDSEPredictor(model, micro_batch_size=32)
        hooked = BatchedDSEPredictor(model, micro_batch_size=32,
                                     on_batch=lambda *a: None)
        np.testing.assert_array_equal(hooked.predict_indices(inputs),
                                      plain.predict_indices(inputs))


class TestEvaluateModelUsesBatchedPath:
    def test_metrics_identical_across_micro_batches(self, problem,
                                                    small_dataset, oracle):
        model = _model(problem, 9)
        a = evaluate_model(model, small_dataset, oracle=oracle,
                           compute_regret=True, micro_batch_size=32)
        b = evaluate_model(model, small_dataset, oracle=oracle,
                           compute_regret=True, micro_batch_size=512)
        assert a.as_dict() == b.as_dict()
