"""Train-phase profiling: PhaseProfiler accounting, ProfilerCallback
wiring, and the bit-identity contract of the instrumented loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (AirchitectV2, ModelConfig, Stage1Config, Stage1Trainer,
                        Stage2Config, Stage2Trainer)
from repro.dse import generate_random_dataset
from repro.obs import PHASES, MetricsRegistry, PhaseProfiler
from repro.train import ProfilerCallback


@pytest.fixture(scope="module")
def train_data(problem):
    return generate_random_dataset(problem, 300, np.random.default_rng(55))


def _v2_model(problem, seed=0):
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                         head_hidden=16, num_buckets=8)
    return AirchitectV2(config, problem, np.random.default_rng(seed))


class TestPhaseProfiler:
    def test_record_accumulates_per_phase(self):
        profiler = PhaseProfiler()
        profiler.record("forward", 0.2)
        profiler.record("forward", 0.1)
        profiler.record("backward", 0.3)
        assert profiler.total_seconds("forward") == pytest.approx(0.3)
        assert profiler.total_seconds("backward") == pytest.approx(0.3)
        assert profiler.total_seconds("data") == 0.0

    def test_batch_seconds_resets_with_start_batch(self):
        profiler = PhaseProfiler()
        profiler.start_batch()
        profiler.record("backward", 0.2)
        profiler.record("optimizer", 0.1)
        assert profiler.batch_seconds() == pytest.approx(0.3)
        profiler.start_batch()
        assert profiler.batch_seconds() == 0.0

    def test_negative_durations_clamped(self):
        profiler = PhaseProfiler()
        profiler.record("forward", -1.0)     # subtraction gone wrong
        assert profiler.total_seconds("forward") == 0.0
        assert profiler.snapshot()["phases"]["forward"]["count"] == 1

    def test_snapshot_shares_sum_to_one(self):
        profiler = PhaseProfiler()
        for phase, seconds in zip(PHASES, (0.1, 0.5, 0.3, 0.1)):
            profiler.record(phase, seconds)
        snap = profiler.snapshot()
        assert sum(p["share"] for p in snap["phases"].values()) \
            == pytest.approx(1.0)
        assert snap["phases"]["forward"]["share"] == pytest.approx(0.5)
        assert "buckets" not in snap["phases"]["forward"]

    def test_registry_publication(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry=registry)
        profiler.record("backward", 0.01)
        text = registry.render()
        assert "# TYPE repro_train_phase_seconds histogram" in text
        assert 'repro_train_phase_seconds_count{phase="backward"} 1' in text


class TestProfilerCallback:
    def test_fit_attaches_profiler_and_counts_batches(self, problem,
                                                      train_data):
        callback = ProfilerCallback()
        model = _v2_model(problem)
        Stage2Trainer(model, Stage2Config(epochs=2)).train(
            train_data, callbacks=(callback,))
        snap = callback.snapshot()
        # 300 samples / batch 256 -> 2 batches per epoch, 2 epochs.
        assert snap["batches"] == 4
        for phase in PHASES:
            assert snap["phases"][phase]["count"] == 4
        assert snap["total_s"] > 0

    def test_profiled_history_bit_identical(self, problem, train_data):
        config = Stage1Config(epochs=3)
        plain = Stage1Trainer(_v2_model(problem), config).train(train_data)
        profiled = Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=(ProfilerCallback(),))
        assert profiled == plain

    def test_loop_without_profiler_stays_uninstrumented(self, problem,
                                                        train_data):
        from repro.train import TrainLoop

        captured = {}

        class Probe(ProfilerCallback):
            def on_fit_begin(self, loop) -> None:
                captured["loop"] = loop      # do NOT attach a profiler

        trainer = Stage2Trainer(_v2_model(problem), Stage2Config(epochs=1))
        trainer.train(train_data, callbacks=(Probe(),))
        assert isinstance(captured["loop"], TrainLoop)
        assert captured["loop"].profiler is None

    def test_external_profiler_instance_reused(self):
        profiler = PhaseProfiler()
        callback = ProfilerCallback(profiler=profiler)
        assert callback.profiler is profiler
