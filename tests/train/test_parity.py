"""Seed-for-seed parity: the unified TrainLoop vs the pre-refactor loops.

Each legacy function below is a frozen copy of the hand-rolled training
loop that existed before the :mod:`repro.train` refactor (PR 3).  The
ported trainers must reproduce their per-epoch loss histories *exactly* —
same rng consumption order, same floating-point op order — which is the
contract that let the five loops be deleted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.baselines import (GANDSE, GANDSEConfig, AirchitectV1, V1Config,
                             VAESA, VAESAConfig, train_gandse, train_v1,
                             train_vaesa)
from repro.core import (AirchitectV2, ModelConfig, Stage1Config, Stage1Trainer,
                        Stage2Config, Stage2Trainer, contrastive_labels)
from repro.dse import generate_random_dataset


@pytest.fixture(scope="module")
def train_data(problem):
    return generate_random_dataset(problem, 300, np.random.default_rng(77))


def _v2_model(problem, seed=0, **overrides):
    config = dict(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                  head_hidden=16, num_buckets=8)
    config.update(overrides)
    return AirchitectV2(ModelConfig(**config), problem,
                        np.random.default_rng(seed))


# ----------------------------------------------------------------------
# Frozen pre-refactor loops
# ----------------------------------------------------------------------
def _legacy_stage1(trainer, dataset):
    cfg = trainer.config
    rng = np.random.default_rng(cfg.seed)
    model = trainer.model
    model.train()

    labels = contrastive_labels(model, dataset)
    perf, trainer.perf_mean, trainer.perf_std = dataset.perf_targets()
    data = nn.ArrayDataset(dataset.inputs, labels, perf)
    loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng,
                           drop_last=len(data) > cfg.batch_size)

    params = model.encoder.parameters() + model.perf_head.parameters()
    optimizer = nn.Adam(params, lr=cfg.lr)
    scheduler = nn.LRScheduler(optimizer, nn.cosine_schedule(cfg.epochs))

    history = {"loss": [], "contrastive": [], "perf": []}
    for _epoch in range(cfg.epochs):
        sums = {"loss": 0.0, "contrastive": 0.0, "perf": 0.0}
        batches = 0
        for xb, yb, pb in loader:
            embedding = model.embed(xb)
            pred_perf = model.perf_head(embedding)

            terms = []
            lc_val = lp_val = 0.0
            if cfg.use_contrastive:
                lc = trainer.contrastive(embedding, yb)
                terms.append(lc)
                lc_val = lc.item()
            if cfg.use_perf:
                lp = nn.l1_loss(pred_perf, pb)
                terms.append(lp)
                lp_val = lp.item()
            if not terms:
                lp = nn.mse_loss(pred_perf, pb)
                terms.append(lp)
                lp_val = lp.item()

            loss = terms[0]
            for term in terms[1:]:
                loss = loss + term

            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, cfg.grad_clip)
            optimizer.step()

            sums["loss"] += loss.item()
            sums["contrastive"] += lc_val
            sums["perf"] += lp_val
            batches += 1
        scheduler.step()
        for key in history:
            history[key].append(sums[key] / max(batches, 1))
    model.eval()
    return history


def _legacy_stage2(trainer, dataset):
    cfg = trainer.config
    model = trainer.model
    rng = np.random.default_rng(cfg.seed)

    model.train()
    model.encoder.requires_grad_(False)
    model.perf_head.requires_grad_(False)

    pe_t, l2_t = trainer._targets(dataset)
    data = nn.ArrayDataset(dataset.inputs, pe_t, l2_t)
    loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    params = model.decoder.parameters()
    optimizer = nn.Adam(params, lr=cfg.lr)
    scheduler = nn.LRScheduler(optimizer, nn.cosine_schedule(cfg.epochs))

    history = {"loss": []}
    for _epoch in range(cfg.epochs):
        total, batches = 0.0, 0
        for xb, pb, lb in loader:
            embedding = model.embed(xb)
            pe_logits, l2_logits = model.decoder(embedding.detach())
            loss = trainer._loss(pe_logits, l2_logits, pb, lb)

            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, cfg.grad_clip)
            optimizer.step()
            total += loss.item()
            batches += 1
        scheduler.step()
        history["loss"].append(total / max(batches, 1))

    model.encoder.requires_grad_(True)
    model.perf_head.requires_grad_(True)
    model.eval()
    return history


def _legacy_train_v1(model, dataset):
    cfg = model.config
    rng = np.random.default_rng(cfg.seed)
    model.train()

    if cfg.head_style == "joint":
        targets = dataset.joint_labels(model.problem.space.n_l2)
        data = nn.ArrayDataset(dataset.inputs, targets)
    else:
        data = nn.ArrayDataset(dataset.inputs,
                               model.pe_codec.encode(dataset.pe_idx),
                               model.l2_codec.encode(dataset.l2_idx))
    loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    params = model.parameters()
    optimizer = nn.Adam(params, lr=cfg.lr)
    scheduler = nn.LRScheduler(optimizer, nn.cosine_schedule(cfg.epochs))
    unification = nn.UnificationLoss()

    history = {"loss": []}
    for _epoch in range(cfg.epochs):
        total, batches = 0.0, 0
        for batch in loader:
            if cfg.head_style == "joint":
                xb, yb = batch
                pe_logits, _ = model.forward(xb)
                loss = nn.cross_entropy(pe_logits, yb)
            else:
                xb, pe_q, l2_q = batch
                pe_logits, l2_logits = model.forward(xb)
                loss = unification(pe_logits, pe_q) + unification(l2_logits, l2_q)

            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, cfg.grad_clip)
            optimizer.step()
            total += loss.item()
            batches += 1
        scheduler.step()
        history["loss"].append(total / max(batches, 1))
    model.eval()
    return history


def _legacy_train_gandse(model, dataset):
    cfg = model.config
    rng = np.random.default_rng(cfg.seed)
    model.train()

    designs = model.normalise_labels(dataset)
    data = nn.ArrayDataset(dataset.inputs, designs)
    loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    g_params = model.generator.parameters()
    d_params = model.discriminator.parameters()
    g_opt = nn.Adam(g_params, lr=cfg.lr_generator)
    d_opt = nn.Adam(d_params, lr=cfg.lr_discriminator)

    history = {"g_loss": [], "d_loss": []}
    for _epoch in range(cfg.epochs):
        g_total = d_total = 0.0
        batches = 0
        for xb, real in loader:
            feats = nn.Tensor(model.problem.featurize(xb))
            batch = len(xb)

            noise = nn.Tensor(rng.normal(size=(batch, cfg.noise_dim)))
            fake = model.generator(feats, noise).detach()
            mismatched = real[rng.permutation(batch)]
            d_real = model.discriminator(feats, nn.Tensor(real))
            d_fake = model.discriminator(feats, fake)
            d_mismatch = model.discriminator(feats, nn.Tensor(mismatched))
            d_loss = (nn.binary_cross_entropy_with_logits(d_real, np.ones(batch)).mean()
                      + nn.binary_cross_entropy_with_logits(d_fake, np.zeros(batch)).mean()
                      + nn.binary_cross_entropy_with_logits(d_mismatch, np.zeros(batch)).mean())
            d_opt.zero_grad()
            d_loss.backward()
            nn.clip_grad_norm(d_params, cfg.grad_clip)
            d_opt.step()

            noise = nn.Tensor(rng.normal(size=(batch, cfg.noise_dim)))
            gen = model.generator(feats, noise)
            d_gen = model.discriminator(feats, gen)
            adv = nn.binary_cross_entropy_with_logits(d_gen, np.ones(batch)).mean()
            recon = (gen - nn.Tensor(real)).abs().mean()
            g_loss = adv + recon * cfg.recon_weight
            g_opt.zero_grad()
            g_loss.backward()
            nn.clip_grad_norm(g_params, cfg.grad_clip)
            g_opt.step()

            g_total += g_loss.item()
            d_total += d_loss.item()
            batches += 1
        history["g_loss"].append(g_total / max(batches, 1))
        history["d_loss"].append(d_total / max(batches, 1))
    model.eval()
    return history


def _legacy_train_vaesa(model, dataset):
    cfg = model.config
    rng = np.random.default_rng(cfg.seed)
    model.train()

    space = model.problem.space
    designs = np.stack([dataset.pe_idx / max(space.n_pe - 1, 1),
                        dataset.l2_idx / max(space.n_l2 - 1, 1)], axis=1)
    perf, _, _ = dataset.perf_targets()
    data = nn.ArrayDataset(dataset.inputs, designs, perf)
    loader = nn.DataLoader(data, cfg.batch_size, shuffle=True, rng=rng)

    params = model.parameters()
    optimizer = nn.Adam(params, lr=cfg.lr)

    history = {"loss": [], "recon": [], "kl": [], "perf": []}
    for _epoch in range(cfg.epochs):
        sums = {"loss": 0.0, "recon": 0.0, "kl": 0.0, "perf": 0.0}
        batches = 0
        for xb, db, pb in loader:
            feats = nn.Tensor(model.problem.featurize(xb))
            target = nn.Tensor(db)

            mu, logvar = model.encode(target)
            eps = nn.Tensor(rng.normal(size=mu.shape))
            z = mu + (logvar * 0.5).exp() * eps

            recon = model.decode(z)
            recon_loss = nn.mse_loss(recon, db)
            kl = (-0.5 * (logvar + 1.0 - mu * mu - logvar.exp())).sum(axis=-1).mean()
            perf_pred = model.predict_perf(z, feats)
            perf_loss = nn.mse_loss(perf_pred, pb)

            loss = recon_loss + kl * cfg.beta + perf_loss * cfg.perf_weight
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, cfg.grad_clip)
            optimizer.step()

            sums["loss"] += loss.item()
            sums["recon"] += recon_loss.item()
            sums["kl"] += kl.item()
            sums["perf"] += perf_loss.item()
            batches += 1
        for key in history:
            history[key].append(sums[key] / max(batches, 1))
    model.eval()
    return history


# ----------------------------------------------------------------------
# Parity assertions (exact equality: same op order, same rng stream)
# ----------------------------------------------------------------------
class TestStage1Parity:
    @pytest.mark.parametrize("use_c,use_p", [(True, True), (True, False),
                                             (False, True), (False, False)])
    def test_history_identical(self, problem, train_data, use_c, use_p):
        config = Stage1Config(epochs=4, use_contrastive=use_c, use_perf=use_p)
        legacy_trainer = Stage1Trainer(_v2_model(problem), config)
        legacy = _legacy_stage1(legacy_trainer, train_data)
        ported_trainer = Stage1Trainer(_v2_model(problem), config)
        ported = ported_trainer.train(train_data)
        assert ported == legacy
        assert ported_trainer.perf_mean == legacy_trainer.perf_mean
        assert ported_trainer.perf_std == legacy_trainer.perf_std

    def test_weights_identical(self, problem, train_data):
        config = Stage1Config(epochs=3)
        legacy_model = _v2_model(problem)
        legacy_trainer = Stage1Trainer(legacy_model, config)
        _legacy_stage1(legacy_trainer, train_data)
        ported_model = _v2_model(problem)
        Stage1Trainer(ported_model, config).train(train_data)
        legacy_params = dict(legacy_model.named_parameters())
        for key, param in ported_model.named_parameters():
            np.testing.assert_array_equal(param.data, legacy_params[key].data,
                                          err_msg=key)
        # The ported trainer additionally persists the normalisation stats
        # as model buffers (the legacy loop kept them trainer-only).
        assert float(ported_model.perf_mean) == legacy_trainer.perf_mean
        assert float(ported_model.perf_std) == legacy_trainer.perf_std


class TestStage2Parity:
    @pytest.mark.parametrize("style", ["uov", "classification", "joint",
                                       "regression"])
    def test_history_identical(self, problem, train_data, style):
        config = Stage2Config(epochs=4)
        legacy = _legacy_stage2(
            Stage2Trainer(_v2_model(problem, head_style=style), config),
            train_data)
        ported = Stage2Trainer(
            _v2_model(problem, head_style=style), config).train(train_data)
        assert ported == legacy


class TestV1Parity:
    @pytest.mark.parametrize("style", ["joint", "uov"])
    def test_history_identical(self, problem, train_data, style):
        config = V1Config(epochs=4, head_style=style)
        legacy = _legacy_train_v1(
            AirchitectV1(config, problem, np.random.default_rng(0)),
            train_data)
        ported = train_v1(
            AirchitectV1(config, problem, np.random.default_rng(0)),
            train_data)
        assert ported == legacy


class TestGANDSEParity:
    def test_history_identical(self, problem, train_data):
        """The multi-optimiser case: alternating D/G steps, interleaved
        noise draws from the shared rng stream."""
        config = GANDSEConfig(epochs=4)
        legacy = _legacy_train_gandse(
            GANDSE(config, problem, np.random.default_rng(0)), train_data)
        ported = train_gandse(
            GANDSE(config, problem, np.random.default_rng(0)), train_data)
        assert ported == legacy


class TestVAESAParity:
    def test_history_identical(self, problem, train_data):
        config = VAESAConfig(epochs=4)
        legacy = _legacy_train_vaesa(
            VAESA(config, problem, np.random.default_rng(0)), train_data)
        ported = train_vaesa(
            VAESA(config, problem, np.random.default_rng(0)), train_data)
        assert ported == legacy
