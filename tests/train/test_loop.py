"""The unified TrainLoop runtime: callbacks, checkpointing, resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GANDSE, GANDSEConfig, train_gandse
from repro.core import (AirchitectV2, ModelConfig, Stage1Config, Stage1Trainer,
                        Stage2Config, Stage2Trainer)
from repro.dse import generate_random_dataset
from repro.train import (Callback, CheckpointMismatchError, Checkpointer,
                         EarlyStopping, ThroughputMonitor, checkpoint_exists)


@pytest.fixture(scope="module")
def train_data(problem):
    return generate_random_dataset(problem, 300, np.random.default_rng(55))


def _v2_model(problem, seed=0):
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8,
                         head_hidden=16, num_buckets=8)
    return AirchitectV2(config, problem, np.random.default_rng(seed))


class StopAfter(Callback):
    """Simulate an interrupt: request a stop after ``n`` completed epochs."""

    def __init__(self, n: int):
        self.n = n

    def on_epoch_end(self, loop) -> None:
        if loop.epoch + 1 >= self.n:
            loop.should_stop = True


class TestCheckpointResume:
    def test_stage1_resume_matches_uninterrupted_run(self, problem,
                                                     train_data, tmp_path):
        config = Stage1Config(epochs=6)
        straight_model = _v2_model(problem)
        straight = Stage1Trainer(straight_model, config).train(train_data)

        ckpt = tmp_path / "stage1.npz"
        partial = Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=[StopAfter(3)], checkpoint_path=ckpt)
        assert len(partial["loss"]) == 3
        assert checkpoint_exists(ckpt)

        resumed_model = _v2_model(problem)
        resumed_trainer = Stage1Trainer(resumed_model, config)
        resumed = resumed_trainer.train(train_data, checkpoint_path=ckpt)
        assert resumed == straight
        for key, param in resumed_model.named_parameters():
            np.testing.assert_array_equal(
                param.data, dict(straight_model.named_parameters())[key].data,
                err_msg=key)
        assert float(resumed_model.perf_mean) == float(straight_model.perf_mean)

    def test_gandse_resume_multi_optimizer(self, problem, train_data,
                                           tmp_path):
        """Resume restores both optimisers' moments and the noise rng."""
        config = GANDSEConfig(epochs=5)
        straight_model = GANDSE(config, problem, np.random.default_rng(0))
        straight = train_gandse(straight_model, train_data)

        ckpt = tmp_path / "gandse.npz"
        train_gandse(GANDSE(config, problem, np.random.default_rng(0)),
                     train_data, callbacks=[StopAfter(2)],
                     checkpoint_path=ckpt)
        resumed_model = GANDSE(config, problem, np.random.default_rng(0))
        resumed = train_gandse(resumed_model, train_data,
                               checkpoint_path=ckpt)
        assert resumed == straight
        for key, param in resumed_model.named_parameters():
            np.testing.assert_array_equal(
                param.data, dict(straight_model.named_parameters())[key].data,
                err_msg=key)

    def test_completed_checkpoint_trains_zero_epochs(self, problem,
                                                     train_data, tmp_path):
        config = Stage2Config(epochs=3)
        ckpt = tmp_path / "stage2.npz"
        model = _v2_model(problem)
        Stage1Trainer(model, Stage1Config(epochs=1)).train(train_data)
        first = Stage2Trainer(model, config).train(train_data,
                                                   checkpoint_path=ckpt)
        before = {k: p.data.copy() for k, p in model.named_parameters()}
        again = Stage2Trainer(model, config).train(train_data,
                                                   checkpoint_path=ckpt)
        assert again == first
        for key, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[key], err_msg=key)

    def test_resume_false_restarts(self, problem, train_data, tmp_path):
        config = Stage1Config(epochs=3)
        ckpt = tmp_path / "stage1.npz"
        Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=[StopAfter(1)], checkpoint_path=ckpt)
        history = Stage1Trainer(_v2_model(problem), config).train(
            train_data, checkpoint_path=ckpt, resume=False)
        assert len(history["loss"]) == 3

    def test_mismatched_checkpoint_refused(self, problem, train_data,
                                           tmp_path):
        ckpt = tmp_path / "stage1.npz"
        Stage1Trainer(_v2_model(problem), Stage1Config(epochs=2)).train(
            train_data, checkpoint_path=ckpt)
        with pytest.raises(CheckpointMismatchError):
            Stage1Trainer(_v2_model(problem), Stage1Config(epochs=4)).train(
                train_data, checkpoint_path=ckpt)

    def test_checkpoint_every_interval(self, problem, train_data, tmp_path):
        ckpt = tmp_path / "stage1.npz"
        saver = Checkpointer(ckpt, every=2)
        Stage1Trainer(_v2_model(problem), Stage1Config(epochs=5)).train(
            train_data, callbacks=[saver])
        # Epochs 2, 4 (interval) and 5 (final) -> three saves.
        assert saver.saves == 3
        assert checkpoint_exists(ckpt)


class TestCallbacks:
    def test_early_stopping_halts(self, problem, train_data):
        stopper = EarlyStopping(monitor="loss", patience=1, min_delta=10.0)
        history = Stage1Trainer(_v2_model(problem), Stage1Config(epochs=8)) \
            .train(train_data, callbacks=[stopper])
        # With an impossible min_delta the second epoch never improves.
        assert len(history["loss"]) == 2
        assert stopper.stopped_epoch == 1

    def test_early_stopping_does_not_fire_while_improving(self, problem,
                                                          train_data):
        stopper = EarlyStopping(monitor="loss", patience=8)
        history = Stage1Trainer(_v2_model(problem), Stage1Config(epochs=4)) \
            .train(train_data, callbacks=[stopper])
        assert len(history["loss"]) == 4
        assert stopper.stopped_epoch is None

    def test_throughput_monitor(self, problem, train_data):
        monitor = ThroughputMonitor()
        Stage1Trainer(_v2_model(problem), Stage1Config(epochs=3)) \
            .train(train_data, callbacks=[monitor])
        assert len(monitor.epochs) == 3
        assert monitor.total_seconds > 0
        assert monitor.mean_samples_per_sec > 0
        assert all(e["samples"] > 0 for e in monitor.epochs)

    def test_callbacks_do_not_change_results(self, problem, train_data):
        """Attaching observers must not perturb the training stream."""
        config = Stage1Config(epochs=3)
        plain = Stage1Trainer(_v2_model(problem), config).train(train_data)
        observed = Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=[ThroughputMonitor(),
                                   EarlyStopping(patience=99)])
        assert observed == plain


class TestBuffers:
    def test_perf_stats_roundtrip_through_save_load(self, problem, train_data,
                                                    tmp_path):
        """A loaded model de-normalises performance without retraining."""
        from repro.nn import load_module, save_module
        model = _v2_model(problem)
        trainer = Stage1Trainer(model, Stage1Config(epochs=2))
        trainer.train(train_data)
        path = tmp_path / "model.npz"
        save_module(model, path)

        fresh = _v2_model(problem, seed=9)
        load_module(fresh, path)
        assert float(fresh.perf_mean) == trainer.perf_mean
        assert float(fresh.perf_std) == trainer.perf_std
        np.testing.assert_allclose(
            fresh.predict_performance(train_data.inputs[:16]),
            model.predict_performance(train_data.inputs[:16]))

    def test_predict_performance_denormalises(self, problem, train_data):
        model = _v2_model(problem)
        Stage1Trainer(model, Stage1Config(epochs=3)).train(train_data)
        denorm = model.predict_performance(train_data.inputs[:32])
        raw = model.predict_performance(train_data.inputs[:32],
                                        denormalise=False)
        np.testing.assert_allclose(
            denorm,
            np.exp(raw * float(model.perf_std) + float(model.perf_mean)))
        assert (denorm > 0).all()

    def test_legacy_snapshot_without_buffers_loads(self, problem, tmp_path):
        """Pre-buffer .npz snapshots (parameters only) still load."""
        import numpy as np_
        from repro.nn import load_module
        model = _v2_model(problem)
        state = {name: param.data
                 for name, param in model.named_parameters()}
        path = tmp_path / "legacy.npz"
        np_.savez(path, **state)
        fresh = _v2_model(problem, seed=3)
        load_module(fresh, path)
        assert float(fresh.perf_mean) == 0.0   # buffer kept its default

    def test_early_stopping_state_survives_resume(self, problem, train_data,
                                                  tmp_path):
        """A resumed run makes the same stopping decision as an
        uninterrupted one, and a completed early-stopped run does not
        train further on re-run."""
        config = Stage1Config(epochs=8)
        ckpt = tmp_path / "es.npz"
        stopper = EarlyStopping(monitor="loss", patience=1, min_delta=10.0)
        history = Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=[stopper], checkpoint_path=ckpt)
        assert len(history["loss"]) == 2          # stopped at epoch 2

        # Re-run with a *fresh* EarlyStopping: its counters are restored
        # from the checkpoint, so no extra epochs are trained.
        resumed = Stage1Trainer(_v2_model(problem), config).train(
            train_data,
            callbacks=[EarlyStopping(monitor="loss", patience=1,
                                     min_delta=10.0)],
            checkpoint_path=ckpt)
        assert resumed == history
