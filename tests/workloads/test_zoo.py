"""Workload zoo: registry integrity, lowering maths, known model shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maestro import GemmWorkload
from repro.workloads import (TRAINING_MODEL_COUNT, ModelWorkload, alexnet,
                             bert, build_workload, cifar_resnet, conv2d_gemm,
                             conv_out_size, densenet, evaluation_registry,
                             evaluation_workloads, gpt2, lenet5, linear_gemm,
                             llama, mobilenet_v1, mobilenet_v2, resnet,
                             squeezenet, t5_encoder, training_registry,
                             training_workloads, vgg, vit)


class TestLowering:
    def test_conv_out_size(self):
        assert conv_out_size(224, 7, 2, 3) == 112
        assert conv_out_size(224, 3, 1, 1) == 224
        assert conv_out_size(32, 5, 1, 0) == 28

    def test_conv_out_size_invalid(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 7, 1, 0)

    def test_conv2d_gemm_dims(self):
        g = conv2d_gemm(out_ch=64, in_ch=3, kernel=7, out_h=112, out_w=112)
        assert (g.m, g.k, g.n) == (64, 3 * 49, 112 * 112)

    def test_linear_gemm_dims(self):
        g = linear_gemm(out_features=1000, in_features=2048, tokens=1)
        assert (g.m, g.k, g.n) == (1000, 2048, 1)


class TestModelWorkload:
    def test_merging_counts_identical_layers(self):
        layers = [GemmWorkload(8, 8, 8)] * 3 + [GemmWorkload(4, 4, 4)]
        model = ModelWorkload.from_layers("m", layers)
        assert model.num_unique_layers == 2
        assert model.num_layers == 4
        assert model.counts == (3, 1)

    def test_total_macs(self):
        layers = [GemmWorkload(2, 2, 2)] * 2
        model = ModelWorkload.from_layers("m", layers)
        assert model.total_macs == 16

    def test_layer_array_shape(self):
        model = resnet(18, 224)
        arr = model.layer_array()
        assert arr.shape == (model.num_unique_layers, 3)
        assert (arr > 0).all()

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            ModelWorkload("m", (GemmWorkload(1, 1, 1),), (1, 2))


class TestRegistry:
    def test_exactly_105_training_models(self):
        assert len(training_registry()) == TRAINING_MODEL_COUNT == 105

    def test_training_workloads_materialise(self):
        models = training_workloads()
        assert len(models) == 105
        assert all(m.num_layers > 0 for m in models)

    def test_no_duplicate_names(self):
        names = [m.name for m in training_workloads()]
        assert len(names) == len(set(names))

    def test_evaluation_set_disjoint(self):
        train_names = set(training_registry())
        eval_names = set(evaluation_registry())
        assert not (train_names & eval_names)

    def test_evaluation_contains_paper_models(self):
        names = set(evaluation_registry())
        assert "resnet50_224" in names
        assert any("llama2_7b" in n for n in names)
        assert any("llama3_8b" in n for n in names)

    def test_build_workload_by_name(self):
        model = build_workload("resnet50_224")
        assert model.name == "resnet50_224"

    def test_build_workload_unknown(self):
        with pytest.raises(KeyError):
            build_workload("resnet9000")

    def test_all_layer_dims_positive(self):
        for model in evaluation_workloads():
            arr = model.layer_array()
            assert (arr >= 1).all(), model.name


class TestKnownShapes:
    """Spot checks against published architecture numbers."""

    def test_resnet50_macs_about_4_gmacs(self):
        macs = resnet(50, 224).total_macs
        assert 3.5e9 < macs < 4.7e9

    def test_resnet18_macs_about_1_8_gmacs(self):
        macs = resnet(18, 224).total_macs
        assert 1.4e9 < macs < 2.2e9

    def test_vgg16_macs_about_15_gmacs(self):
        macs = vgg(16, 224).total_macs
        assert 13e9 < macs < 17e9

    def test_mobilenetv1_much_lighter_than_vgg(self):
        assert mobilenet_v1(1.0, 224).total_macs * 10 < vgg(16, 224).total_macs

    def test_mobilenet_width_multiplier_scales(self):
        assert mobilenet_v1(0.5, 224).total_macs < \
            mobilenet_v1(1.0, 224).total_macs

    def test_vgg_depth_ordering(self):
        assert vgg(11, 224).total_macs < vgg(19, 224).total_macs

    def test_resnet_depth_ordering(self):
        assert resnet(18, 224).total_macs < resnet(34, 224).total_macs \
            < resnet(101, 224).total_macs

    def test_resolution_scaling(self):
        assert resnet(18, 128).total_macs < resnet(18, 224).total_macs

    def test_lenet_is_tiny(self):
        assert lenet5().total_macs < 1e7

    def test_bert_base_layer_count(self):
        model = bert("base", 128)
        # 12 layers x (QKV + scores/context per head + out + 2 FFN)
        assert model.num_layers == 12 * (3 + 12 + 12 + 1 + 2)

    def test_bert_projection_shape(self):
        model = bert("base", 128)
        qproj = [l for l in model.layers if l.m == 768 and l.k == 768]
        assert any(l.n == 128 for l in qproj)

    def test_gpt2_sizes_ordered(self):
        assert gpt2("small", 256).total_macs < gpt2("xl", 256).total_macs

    def test_llama2_7b_prefill_macs(self):
        """~ params(6.7e9) * tokens MACs for prefill."""
        model = llama("llama2_7b", 2048)
        expected = 6.6e9 * 2048
        assert 0.7 * expected < model.total_macs < 1.4 * expected

    def test_llama3_gqa_shrinks_kv(self):
        l3 = llama("llama3_8b", 1024)
        kv = [l for l in l3.layers if l.m == 1024 and l.k == 4096]
        assert kv, "GQA K/V projections (8 kv-heads x 128) must exist"

    def test_vit_token_count(self):
        model = vit("b16", 224)
        seq = (224 // 16) ** 2 + 1
        assert any(l.n == seq for l in model.layers)

    def test_cifar_resnet_depth_rule(self):
        with pytest.raises(ValueError):
            cifar_resnet(21)

    def test_densenet_and_squeezenet_build(self):
        assert densenet(121).total_macs > 0
        assert squeezenet().total_macs > 0
        assert t5_encoder("small").total_macs > 0
        assert alexnet().total_macs > 0
        assert mobilenet_v2(1.0).total_macs > 0
