"""Chaos-suite fixtures: per-test deadlines and a tiny serving model.

The suite kills real pool workers and truncates real archives, so every
test gets a hard SIGALRM deadline — a recovery path that deadlocks must
fail the test, not hang CI.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro import faults
from repro.core import AirchitectV2, ModelConfig

_TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def _chaos_test_timeout(request):
    if not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def on_alarm(signum, frame):
        pytest.fail(f"chaos test exceeded the {_TEST_TIMEOUT_S}s per-test "
                    f"timeout (recovery path likely deadlocked)",
                    pytrace=True)

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _no_leaked_arming():
    """No test may leave a fault registry armed for the next one."""
    yield
    assert faults.active() is None, "a test leaked an armed FaultRegistry"


@pytest.fixture(scope="session")
def tiny_model(problem) -> AirchitectV2:
    config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8)
    return AirchitectV2(config, problem, np.random.default_rng(2024))
