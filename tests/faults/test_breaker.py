"""CircuitBreaker state machine under a fake clock."""

from __future__ import annotations

import pytest

from repro.faults import STATE_CODES, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make(clock, threshold=3, reset=10.0, **kw):
    return CircuitBreaker(failure_threshold=threshold, reset_timeout_s=reset,
                          clock=clock, **kw)


class TestTransitions:
    def test_starts_closed_and_allows(self, clock):
        breaker = make(clock)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self, clock):
        breaker = make(clock, threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self, clock):
        breaker = make(clock, threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_admits_one_probe_after_the_timeout(self, clock):
        breaker = make(clock, threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()              # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()          # second caller is refused

    def test_probe_success_closes(self, clock):
        breaker = make(clock, threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()

    def test_probe_failure_reopens(self, clock):
        breaker = make(clock, threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_neutral_releases_the_probe_without_moving_state(self, clock):
        breaker = make(clock, threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_neutral()            # e.g. the probe answered 400
        assert breaker.state == "half_open"
        assert breaker.allow()              # slot is free for a real probe
        breaker.record_success()
        assert breaker.state == "closed"


class TestSurface:
    def test_retry_after_counts_down(self, clock):
        breaker = make(clock, threshold=1, reset=10.0)
        assert breaker.retry_after_s() == 0.0
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after_s() == pytest.approx(6.0)

    def test_state_codes(self, clock):
        breaker = make(clock, threshold=1, reset=1.0)
        assert breaker.state_code == STATE_CODES["closed"] == 0
        breaker.record_failure()
        assert breaker.state_code == STATE_CODES["open"] == 2
        clock.advance(2.0)
        breaker.allow()
        assert breaker.state_code == STATE_CODES["half_open"] == 1

    def test_on_transition_callback(self, clock):
        seen = []
        breaker = make(clock, threshold=1, reset=1.0, on_transition=seen.append)
        breaker.record_failure()
        clock.advance(2.0)
        breaker.allow()
        breaker.record_success()
        assert seen == ["open", "half_open", "closed"]

    def test_threshold_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
