"""The fault-injection registry itself: arming, budgets, env round-trip."""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.faults import FaultRegistry, inject_faults
from repro.faults.injection import _ENV_VAR, arm_from_env


class TestArming:
    def test_disarmed_fire_returns_none(self):
        assert faults.active() is None
        assert faults.fire("pool.worker_crash") is None

    def test_unknown_point_rejected_at_arm_time(self):
        with pytest.raises(ValueError, match="unknown fault injection"):
            FaultRegistry({"pool.worker_crsh": 1})

    def test_context_manager_arms_and_restores(self):
        assert faults.active() is None
        with inject_faults({"engine.transient_error": 1}) as registry:
            assert faults.active() is registry
            assert os.environ.get(_ENV_VAR) == registry.to_env()
        assert faults.active() is None
        assert _ENV_VAR not in os.environ

    def test_nested_arming_restores_the_outer_registry(self):
        with inject_faults({"engine.transient_error": 1}) as outer:
            with inject_faults({"pool.shard_hang": 2}) as inner:
                assert faults.active() is inner
            assert faults.active() is outer


class TestBudgets:
    def test_counted_budget_fires_exactly_n_times(self):
        with inject_faults({"engine.transient_error": 2}):
            assert faults.fire("engine.transient_error") is not None
            assert faults.fire("engine.transient_error") is not None
            assert faults.fire("engine.transient_error") is None
            assert faults.fire("engine.transient_error") is None

    def test_negative_budget_is_unlimited(self):
        with inject_faults({"engine.transient_error": -1}) as registry:
            for _ in range(10):
                assert faults.fire("engine.transient_error") is not None
        assert registry.snapshot()["engine.transient_error"]["fired"] == 10

    def test_unarmed_point_never_fires_while_armed(self):
        with inject_faults({"engine.transient_error": 1}):
            assert faults.fire("pool.worker_crash") is None

    def test_options_ride_along(self):
        spec = {"pool.shard_hang": {"times": 1, "hang_s": 7.5}}
        with inject_faults(spec):
            hit = faults.fire("pool.shard_hang")
        assert hit == {"hang_s": 7.5}

    def test_probability_zero_never_fires(self):
        with inject_faults({"engine.transient_error":
                            {"times": -1, "p": 0.0}}):
            assert all(faults.fire("engine.transient_error") is None
                       for _ in range(50))

    def test_probabilistic_fires_are_seed_deterministic(self):
        def draw(seed):
            with inject_faults({"engine.transient_error":
                                {"times": -1, "p": 0.5}}, seed=seed):
                return [faults.fire("engine.transient_error") is not None
                        for _ in range(64)]
        assert draw(7) == draw(7)
        assert draw(7) != draw(8)

    def test_snapshot_accounting(self):
        with inject_faults({"engine.transient_error": 3}) as registry:
            faults.fire("engine.transient_error")
            snap = registry.snapshot()["engine.transient_error"]
        assert snap == {"remaining": 2, "fired": 1}


class TestEnvRoundTrip:
    def test_to_env_from_text_round_trip(self):
        registry = FaultRegistry(
            {"pool.shard_hang": {"times": 2, "hang_s": 3.0}}, seed=11)
        clone = FaultRegistry.from_text(registry.to_env())
        assert clone.seed == 11
        assert clone.fire("pool.shard_hang") == {"hang_s": 3.0}

    def test_compact_form(self):
        registry = FaultRegistry.from_text(
            "pool.worker_crash=1:exit_code=9, engine.transient_error=2")
        assert registry.fire("pool.worker_crash") == {"exit_code": 9.0}
        assert registry.fire("pool.worker_crash") is None
        assert registry.fire("engine.transient_error") is not None

    def test_bare_json_mapping(self):
        registry = FaultRegistry.from_text('{"engine.transient_error": 1}')
        assert registry.fire("engine.transient_error") is not None

    def test_arm_from_env_warns_on_garbage(self, monkeypatch):
        monkeypatch.setenv(_ENV_VAR, "not.a.point=1")
        with pytest.warns(RuntimeWarning, match="malformed"):
            assert arm_from_env() is None
        monkeypatch.delenv(_ENV_VAR)
        arm_from_env()

    def test_arm_from_env_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv(_ENV_VAR, raising=False)
        assert arm_from_env() is None


class TestMetrics:
    def test_attach_metrics_publishes_gauges(self):
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
        with inject_faults({"engine.transient_error": 2}) as registry:
            registry.attach_metrics(metrics)
            faults.fire("engine.transient_error")
            text = metrics.render()
        assert 'repro_fault_armed{point="engine.transient_error"} 1' in text
        assert 'repro_fault_fired{point="engine.transient_error"} 1' in text
