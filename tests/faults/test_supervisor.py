"""Self-healing pools under real chaos: SIGKILLed workers, hangs, rebuilds.

These tests kill actual pool processes (via the ``pool.worker_crash``
and ``pool.shard_hang`` injection points) and assert the headline
robustness contract: recovered results are bit-identical to the
fault-free run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core import BatchedDSEPredictor
from repro.dse import ExhaustiveOracle, ShardedLabeller
from repro.faults import (PoolBrokenError, PoolSupervisor, RetryPolicy,
                          inject_faults)
from repro.obs import MetricsRegistry
from repro.serving import ShardedSweepExecutor

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")

# Fast-failure knobs: chaos tests should recover in seconds, not minutes.
FAST_RETRY = RetryPolicy(max_rebuilds=2, backoff_base_s=0.0)
SHARD_TIMEOUT_S = 8.0


def _echo_shard(args):
    idx, payload = args
    return idx, payload * 2


def _boom_shard(args):
    raise RuntimeError(f"shard {args[0]} boomed")


class TestSupervisorUnit:
    @fork_only
    def test_happy_path_runs_all_shards(self):
        sup = PoolSupervisor(
            lambda: multiprocessing.get_context("fork").Pool(2),
            shard_timeout_s=SHARD_TIMEOUT_S, retry=FAST_RETRY)
        try:
            results = sup.run(_echo_shard, [(0, 1), (1, 2), (2, 3)])
        finally:
            sup.close()
        assert results == {0: (0, 2), 1: (1, 4), 2: (2, 6)}
        assert sup.retries == 0 and not sup.degraded

    @fork_only
    def test_persistent_failure_raises_with_partial_results(self):
        sup = PoolSupervisor(
            lambda: multiprocessing.get_context("fork").Pool(2),
            shard_timeout_s=SHARD_TIMEOUT_S,
            retry=RetryPolicy(max_rebuilds=1, backoff_base_s=0.0))
        try:
            with pytest.raises(PoolBrokenError) as excinfo:
                sup.run(_boom_shard, [(0, 1), (1, 2)])
        finally:
            sup.close()
        assert excinfo.value.pending == [0, 1]
        assert excinfo.value.completed == {}
        assert sup.degraded and sup.rebuilds == 1
        # A degraded supervisor short-circuits instead of rebuilding.
        with pytest.raises(PoolBrokenError):
            sup.run(_echo_shard, [(0, 1)])

    def test_declining_factory_degrades_immediately(self):
        sup = PoolSupervisor(lambda: None, retry=FAST_RETRY)
        with pytest.raises(PoolBrokenError) as excinfo:
            sup.run(_echo_shard, [(0, 1), (1, 2)])
        assert sup.degraded
        assert excinfo.value.pending == [0, 1]

    @fork_only
    def test_retry_metrics_are_published(self):
        metrics = MetricsRegistry()
        sup = PoolSupervisor(
            lambda: multiprocessing.get_context("fork").Pool(2),
            shard_timeout_s=SHARD_TIMEOUT_S,
            retry=RetryPolicy(max_rebuilds=0, backoff_base_s=0.0),
            registry=metrics, labels={"component": "test"})
        try:
            with pytest.raises(PoolBrokenError):
                sup.run(_boom_shard, [(0, 1)])
        finally:
            sup.close()
        text = metrics.render()
        assert 'repro_retry_total{component="test"} 1' in text
        assert 'repro_pool_degraded_total{component="test"} 1' in text


class TestSweepExecutorChaos:
    @fork_only
    def test_sigkilled_worker_recovers_bit_identically(self, tiny_model,
                                                       problem, rng):
        """The tentpole gate: a worker dies hard (os._exit) mid-sweep and
        the sweep still completes with bit-identical predictions."""
        inputs = problem.sample_inputs(300, rng)
        expected = BatchedDSEPredictor(tiny_model).predict_indices(inputs)
        with ShardedSweepExecutor(tiny_model, num_workers=2,
                                  min_shard_size=32, mp_context="fork",
                                  shard_timeout_s=SHARD_TIMEOUT_S,
                                  retry=FAST_RETRY) as ex:
            with inject_faults({"pool.worker_crash": 1}):
                pe_idx, l2_idx = ex.predict_indices(inputs)
            assert ex._supervisor.retries >= 1
            assert not ex._supervisor.degraded
        np.testing.assert_array_equal(pe_idx, expected[0])
        np.testing.assert_array_equal(l2_idx, expected[1])

    @fork_only
    def test_hung_worker_times_out_and_recovers(self, tiny_model, problem,
                                                rng):
        inputs = problem.sample_inputs(300, rng)
        expected = BatchedDSEPredictor(tiny_model).predict_indices(inputs)
        with ShardedSweepExecutor(tiny_model, num_workers=2,
                                  min_shard_size=32, mp_context="fork",
                                  shard_timeout_s=3.0,
                                  retry=FAST_RETRY) as ex:
            with inject_faults({"pool.shard_hang":
                                {"times": 1, "hang_s": 600.0}}):
                pe_idx, l2_idx = ex.predict_indices(inputs)
            assert ex._supervisor.retries >= 1
        np.testing.assert_array_equal(pe_idx, expected[0])
        np.testing.assert_array_equal(l2_idx, expected[1])

    @fork_only
    def test_externally_killed_workers_recover(self, tiny_model, problem,
                                               rng):
        """Kill real PIDs from outside (no injection hooks in the loop):
        the supervisor's timeout + rebuild still completes the sweep."""
        inputs = problem.sample_inputs(300, rng)
        expected = BatchedDSEPredictor(tiny_model).predict_indices(inputs)
        with ShardedSweepExecutor(tiny_model, num_workers=2,
                                  min_shard_size=32, mp_context="fork",
                                  shard_timeout_s=SHARD_TIMEOUT_S,
                                  retry=FAST_RETRY) as ex:
            ex.predict_indices(inputs)          # builds the pool
            for pid in ex._supervisor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            pe_idx, l2_idx = ex.predict_indices(inputs)
        np.testing.assert_array_equal(pe_idx, expected[0])
        np.testing.assert_array_equal(l2_idx, expected[1])

    @fork_only
    def test_close_is_safe_on_a_crashed_pool(self, tiny_model, problem,
                                             rng):
        """close() must be idempotent and exception-safe even when every
        worker was already SIGKILLed out from under the pool."""
        ex = ShardedSweepExecutor(tiny_model, num_workers=2,
                                  min_shard_size=32, mp_context="fork",
                                  shard_timeout_s=SHARD_TIMEOUT_S,
                                  retry=FAST_RETRY)
        ex.predict_indices(problem.sample_inputs(200, rng))
        pids = ex._supervisor.worker_pids()
        assert pids
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        ex.close()
        assert ex._pool is None
        ex.close()                              # second close: no-op
        ex.close()


class TestLabellerChaos:
    @fork_only
    def test_sigkilled_labelling_worker_recovers_bit_identically(self,
                                                                 problem):
        inputs = problem.sample_inputs(96, np.random.default_rng(3))
        expected = ExhaustiveOracle(problem).solve(inputs)
        oracle = ExhaustiveOracle(problem)
        with ShardedLabeller(oracle, num_workers=2, min_shard_size=16,
                             mp_context="fork",
                             shard_timeout_s=SHARD_TIMEOUT_S,
                             retry=FAST_RETRY) as labeller:
            with inject_faults({"pool.worker_crash": 1}):
                result = labeller.label(inputs)
            assert labeller._supervisor.retries >= 1
        np.testing.assert_array_equal(result.pe_idx, expected.pe_idx)
        np.testing.assert_array_equal(result.l2_idx, expected.l2_idx)
        np.testing.assert_array_equal(result.best_cost, expected.best_cost)

    @fork_only
    def test_labeller_close_is_safe_on_a_crashed_pool(self, problem):
        oracle = ExhaustiveOracle(problem)
        labeller = ShardedLabeller(oracle, num_workers=2, min_shard_size=16,
                                   mp_context="fork",
                                   shard_timeout_s=SHARD_TIMEOUT_S,
                                   retry=FAST_RETRY)
        labeller.label(problem.sample_inputs(64, np.random.default_rng(4)))
        for pid in labeller._supervisor.worker_pids():
            os.kill(pid, signal.SIGKILL)
        labeller.close()
        labeller.close()
        assert labeller._pool is None
