"""Corruption-safe persistence: checksums, quarantine, rollback resume."""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

from repro.core import ModelConfig, Stage1Config, Stage1Trainer
from repro.dse import ExhaustiveOracle, generate_random_dataset
from repro.faults import inject_faults
from repro.registry import ModelRegistry, RegistryError
from repro.registry.storage import (CorruptArtifactError, atomic_savez,
                                    content_digest, read_state,
                                    read_verified)
from repro.serving import (CorruptCacheWarning, PersistentOracleCache,
                           StaleCacheWarning)
from repro.train import (CheckpointCorruptError, CheckpointMismatchError,
                         load_checkpoint, previous_checkpoint_path)

from tests.train.test_loop import StopAfter, _v2_model


def _truncate(path, keep_fraction=0.5) -> None:
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(1, int(size * keep_fraction)))


class TestVerifiedStorage:
    def test_round_trip_verifies(self, tmp_path):
        path = tmp_path / "a.npz"
        arrays = {"x": np.arange(10), "y": np.eye(3)}
        atomic_savez(path, arrays)
        loaded = read_verified(path)
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        np.testing.assert_array_equal(loaded["y"], arrays["y"])

    def test_truncated_archive_quarantined(self, tmp_path):
        path = str(tmp_path / "a.npz")
        atomic_savez(path, {"x": np.arange(4096)})
        _truncate(path)
        with pytest.raises(CorruptArtifactError) as excinfo:
            read_verified(path)
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert excinfo.value.quarantined_to == path + ".corrupt"

    def test_bit_flip_fails_the_checksum(self, tmp_path):
        path = str(tmp_path / "a.npz")
        # Store uncompressible noise so a mid-file flip cannot become a
        # zlib error first; the checksum is the only thing catching it.
        payload = np.random.default_rng(0).integers(0, 256, 1 << 16) \
            .astype(np.uint8)
        digest = content_digest({"x": payload})
        atomic_savez(path, {"x": payload,
                            "__checksum__": np.array(digest)})
        flipped = payload.copy()
        flipped[123] ^= 0xFF
        atomic_savez(path, {"x": flipped,
                            "__checksum__": np.array(digest)})
        with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
            read_verified(path)
        assert os.path.exists(path + ".corrupt")

    def test_legacy_archive_without_checksum_loads(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, x=np.arange(5))
        loaded = read_verified(path)
        np.testing.assert_array_equal(loaded["x"], np.arange(5))

    def test_read_state_strips_reserved_keys(self, tmp_path):
        path = str(tmp_path / "a.npz")
        atomic_savez(path, {"w": np.ones(3)})
        assert set(read_state(path)) == {"w"}

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_verified(tmp_path / "nope.npz")

    def test_torn_write_injection_tears_the_file(self, tmp_path):
        path = str(tmp_path / "torn.npz")
        with inject_faults({"storage.torn_write":
                            {"times": 1, "keep_fraction": 0.4}}):
            atomic_savez(path, {"x": np.arange(1024)})
        with pytest.raises(CorruptArtifactError):
            read_verified(path)
        # Only the armed write is torn; the next one is healthy again.
        atomic_savez(path, {"x": np.arange(1024)})
        np.testing.assert_array_equal(read_verified(path)["x"],
                                      np.arange(1024))


@pytest.fixture(scope="module")
def train_data(problem):
    return generate_random_dataset(problem, 300, np.random.default_rng(55))


class TestCheckpointRollback:
    def test_garbage_checkpoint_raises_typed_error(self, problem, tmp_path):
        """Satellite: raw BadZipFile/ValueError never escapes; the caller
        sees CheckpointCorruptError naming the path and the quarantine."""
        path = tmp_path / "ckpt.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointCorruptError) as excinfo:
            load_checkpoint(path, loop=None)
        message = str(excinfo.value)
        assert "ckpt.npz" in message and "quarantined" in message
        assert isinstance(excinfo.value, CheckpointMismatchError)
        assert os.path.exists(str(path) + ".corrupt")

    def test_checkpointer_rotates_a_previous_generation(self, problem,
                                                        train_data,
                                                        tmp_path):
        ckpt = tmp_path / "stage1.npz"
        Stage1Trainer(_v2_model(problem), Stage1Config(epochs=4)).train(
            train_data, checkpoint_path=ckpt)
        assert os.path.exists(ckpt)
        assert os.path.exists(previous_checkpoint_path(ckpt))

    def test_resume_through_a_torn_checkpoint(self, problem, train_data,
                                              tmp_path):
        """The tentpole gate: tear the newest checkpoint mid-write (as a
        kill would), resume, and match the uninterrupted run bit for bit."""
        config = Stage1Config(epochs=6)
        straight_model = _v2_model(problem)
        straight = Stage1Trainer(straight_model, config).train(train_data)

        ckpt = tmp_path / "stage1.npz"
        Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=[StopAfter(3)], checkpoint_path=ckpt)
        _truncate(ckpt)                     # the mid-write kill

        resumed_model = _v2_model(problem)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            resumed = Stage1Trainer(resumed_model, config).train(
                train_data, checkpoint_path=ckpt)
        assert resumed == straight
        for key, param in resumed_model.named_parameters():
            np.testing.assert_array_equal(
                param.data,
                dict(straight_model.named_parameters())[key].data,
                err_msg=key)
        # The torn generation was quarantined, not silently retried.
        assert os.path.exists(str(ckpt) + ".corrupt")

    def test_resume_with_both_generations_torn_restarts(self, problem,
                                                        train_data,
                                                        tmp_path):
        config = Stage1Config(epochs=4)
        ckpt = tmp_path / "stage1.npz"
        Stage1Trainer(_v2_model(problem), config).train(
            train_data, callbacks=[StopAfter(3)], checkpoint_path=ckpt)
        _truncate(ckpt)
        _truncate(previous_checkpoint_path(ckpt))
        with pytest.warns(RuntimeWarning, match="corrupt"):
            history = Stage1Trainer(_v2_model(problem), config).train(
                train_data, checkpoint_path=ckpt)
        assert len(history["loss"]) == 4    # fresh start, full run


class TestOracleCacheQuarantine:
    def _snapshot(self, problem, tmp_path):
        oracle = ExhaustiveOracle(problem)
        oracle.solve(problem.sample_inputs(8, np.random.default_rng(1)))
        cache = PersistentOracleCache(tmp_path / "labels.npz")
        cache.save(oracle)
        return cache

    def test_corrupt_snapshot_skipped_and_quarantined(self, problem,
                                                      tmp_path):
        """Satellite: stale and corrupt snapshots share one logged
        skip-and-quarantine path instead of crashing the server."""
        cache = self._snapshot(problem, tmp_path)
        _truncate(cache.path)
        fresh = ExhaustiveOracle(problem)
        with pytest.warns(CorruptCacheWarning, match="starting cold"):
            assert cache.load(fresh) == 0
        assert not cache.exists()
        assert os.path.exists(str(cache.path) + ".corrupt")
        assert fresh.cache_info().size == 0

    def test_corrupt_snapshot_read_meta_returns_none(self, problem,
                                                     tmp_path):
        cache = self._snapshot(problem, tmp_path)
        _truncate(cache.path)
        with pytest.warns(CorruptCacheWarning):
            assert cache.read_meta() is None

    def test_stale_snapshot_set_aside(self, problem, tmp_path):
        cache = self._snapshot(problem, tmp_path)
        stale = ExhaustiveOracle(problem, tolerance=0.5)
        with pytest.warns(StaleCacheWarning, match="fingerprint"):
            assert cache.load(stale) == 0
        assert not cache.exists()
        assert os.path.exists(str(cache.path) + ".stale")

    def test_healthy_snapshot_still_round_trips(self, problem, tmp_path):
        cache = self._snapshot(problem, tmp_path)
        fresh = ExhaustiveOracle(problem)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.load(fresh) == 8


class TestRegistryQuarantine:
    def _registry_with_model(self, problem, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        config = ModelConfig(d_model=16, n_layers=1, n_heads=2, embed_dim=8)
        from repro.core import AirchitectV2
        model = AirchitectV2(config, problem, np.random.default_rng(5))
        registry.save(model, "m1")
        return registry

    def test_corrupt_artifact_raises_registry_error(self, problem, tmp_path):
        registry = self._registry_with_model(problem, tmp_path)
        path = registry.artifact("m1").path
        registry.invalidate("m1")
        _truncate(path, keep_fraction=0.3)
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load("m1")
        assert os.path.exists(str(path) + ".corrupt")

    def test_list_skips_corrupt_artifacts(self, problem, tmp_path):
        registry = self._registry_with_model(problem, tmp_path)
        path = registry.artifact("m1").path
        registry.invalidate("m1")
        _truncate(path, keep_fraction=0.3)
        assert [a.model_id for a in registry.list()] == []
