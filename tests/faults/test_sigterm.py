"""``repro serve`` must drain gracefully on SIGTERM, on both transports.

Orchestrators (Kubernetes, systemd, docker stop) stop services with
SIGTERM; a server that only handles Ctrl-C would be killed mid-request
after the grace period.  These tests boot the real CLI in a subprocess,
SIGTERM it, and require a clean exit through the shutdown path.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.skipif(not hasattr(signal, "SIGTERM"),
                                reason="needs POSIX signals")

_BOOT_TIMEOUT_S = 90
_EXIT_TIMEOUT_S = 30


def _spawn_serve(extra_args=()):
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path),
               PYTHONUNBUFFERED="1")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--untrained", "--scale", "tiny", *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def _wait_for_boot(proc) -> str:
    """Read stderr until the server announces its bound address."""
    lines = []
    deadline = time.monotonic() + _BOOT_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        lines.append(line)
        if "serving one-shot DSE predictions on http://" in line:
            return "".join(lines)
    proc.kill()
    raise AssertionError(f"server never booted; stderr so far: "
                         f"{''.join(lines)!r}")


@pytest.mark.parametrize("transport", ["threaded", "asyncio"])
def test_sigterm_drains_gracefully(transport):
    proc = _spawn_serve(("--async",) if transport == "asyncio" else ())
    try:
        _wait_for_boot(proc)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=_EXIT_TIMEOUT_S)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (stdout, stderr)
    assert "shutting down" in stderr


def test_sigterm_snapshots_the_oracle_cache(tmp_path):
    cache = tmp_path / "labels.npz"
    proc = _spawn_serve(("--oracle-cache", str(cache)))
    try:
        _wait_for_boot(proc)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=_EXIT_TIMEOUT_S)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (stdout, stderr)
    assert "oracle cache: saved" in stderr
    assert cache.exists()
